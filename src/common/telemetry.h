#ifndef SSIN_COMMON_TELEMETRY_H_
#define SSIN_COMMON_TELEMETRY_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

/// \file
/// Process-wide telemetry: a metrics registry (counters, gauges,
/// histograms) plus scoped trace spans, shared by the trainer, the thread
/// pool, the inference engine and the evaluation runner.
///
/// Design constraints, in order:
///  1. *Never* perturb numerics — instrumentation only reads program state,
///     so every equivalence test passes bit-identically with telemetry on.
///  2. Cheap enough to leave on (<2% wall-clock budget, enforced by
///     scripts/check_overhead.sh at <5%): counters are lock-free relaxed
///     atomics striped over per-thread shards, spans cost two clock reads
///     plus one uncontended per-thread mutex, and everything expensive
///     (aggregation, JSON export) happens at snapshot time.
///  3. Compile-out path: configuring with -DSSIN_TELEMETRY=OFF defines
///     SSIN_TELEMETRY_DISABLED, which turns SSIN_TRACE_SPAN into a no-op
///     and pins Enabled() to a constexpr false so Enabled()-guarded probes
///     dead-code-eliminate. The registry classes themselves stay compiled:
///     components (e.g. the serving LayoutCache) use Counter as their
///     always-on statistics API, and the report writers must keep working
///     in disabled builds (they then export metrics with no spans).
///
/// Runtime model: recording is gated by a single process-wide flag
/// (SetEnabled). TrainConfig::telemetry and EvalOptions::telemetry switch
/// it on for their runs; enabling is sticky until SetEnabled(false).
/// Counters and gauges record regardless of the flag — they are plain
/// statistics, not timing probes — while spans and the Enabled()-guarded
/// timing probes stay silent when the flag is off.

namespace ssin {

class JsonWriter;  // common/json_writer.h

namespace telemetry {

// ---------------------------------------------------------------------------
// Enable switches.

#ifdef SSIN_TELEMETRY_DISABLED
/// Whether the telemetry instrumentation was compiled in.
constexpr bool CompiledIn() { return false; }
/// Disabled builds pin the runtime flag to false so guarded probes fold.
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
constexpr bool CompiledIn() { return true; }
/// Whether span/timing recording is currently on (relaxed atomic load).
bool Enabled();
void SetEnabled(bool on);
#endif

/// Monotonic nanoseconds since an arbitrary process-start anchor. All span
/// timestamps share this clock.
int64_t NowNs();

// ---------------------------------------------------------------------------
// Metrics.

/// Number of shards each counter/histogram stripes its state over. Threads
/// map to shards by a sticky per-thread index, so with up to kShards
/// concurrent threads the fast path is contention-free.
constexpr int kShards = 16;

/// Sticky shard index of the calling thread, in [0, kShards).
int ThreadShardIndex();

/// Monotonic event counter. Add() is lock-free (one relaxed fetch_add on
/// this thread's shard); Value() sums the shards.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    shards_[ThreadShardIndex()].value.fetch_add(delta,
                                                std::memory_order_relaxed);
  }
  int64_t Value() const;
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::string name_;
  Shard shards_[kShards];
};

/// Last-write-wins scalar. Set/Value are lock-free (the double travels as
/// its bit pattern through one atomic word).
class Gauge {
 public:
  void Set(double value) {
    bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
  }
  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<uint64_t> bits_{0};  // 0 bits == 0.0.
};

struct HistogramOptions {
  /// Ascending fixed bucket upper bounds; an implicit +inf overflow bucket
  /// is appended. Empty selects the default 1-2-5 log series spanning
  /// 1e-9 .. 1e9 (fits nanosecond-to-second latencies and typical scalar
  /// statistics alike).
  std::vector<double> bucket_bounds;
  /// Per-shard streaming-quantile reservoir size. Quantiles are *exact*
  /// while every shard has seen at most this many samples; beyond that the
  /// shard switches to uniform reservoir subsampling (deterministic
  /// per-shard splitmix64 stream) and quantiles become estimates.
  size_t reservoir_capacity = 4096;
};

/// Aggregated view of one histogram at snapshot time.
struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::vector<double> bucket_bounds;   ///< Upper bounds, +inf excluded.
  std::vector<int64_t> bucket_counts;  ///< bucket_bounds.size() + 1 entries.
  std::vector<double> samples;         ///< Merged reservoirs, sorted.

  double mean() const { return count > 0 ? sum / count : 0.0; }
  /// Linear-interpolated quantile of the retained samples, q in [0, 1].
  /// Exact (equals the same formula applied to all observations) while no
  /// shard overflowed its reservoir.
  double Quantile(double q) const;
};

/// Fixed-bucket + streaming-quantile histogram. Observe() takes one
/// uncontended per-shard mutex (threads own distinct shards up to kShards);
/// Snapshot() merges the shards.
class Histogram {
 public:
  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, const HistogramOptions& options);

  struct Shard {
    mutable std::mutex mu;
    int64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::vector<int64_t> buckets;
    std::vector<double> reservoir;
    uint64_t rng = 0;  ///< splitmix64 state for reservoir replacement.
  };

  std::string name_;
  std::vector<double> bounds_;
  size_t reservoir_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Point-in-time aggregate of every registered metric, ordered by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Writes "counters"/"gauges"/"histograms" members into the writer's
  /// currently open JSON object.
  void WriteJson(JsonWriter* writer) const;
};

/// Process-wide, thread-safe metric registry. Get* registers on first use
/// (mutex-guarded cold path) and returns a stable pointer — callers cache
/// it and hit only the metric's own lock-free/sharded fast path afterwards.
class MetricsRegistry {
 public:
  /// The process-wide registry (leaked singleton: safe to use from static
  /// destructors and detached threads).
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const HistogramOptions& options = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (registrations and cached pointers
  /// stay valid). Concurrent Add()s may land before or after the zeroing.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  // Deterministically ordered so snapshots/exports are stable.
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

/// Shorthands for the global registry.
inline Counter* GetCounter(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name);
}
inline Gauge* GetGauge(const std::string& name) {
  return MetricsRegistry::Global().GetGauge(name);
}
inline Histogram* GetHistogram(const std::string& name,
                               const HistogramOptions& options = {}) {
  return MetricsRegistry::Global().GetHistogram(name, options);
}

// ---------------------------------------------------------------------------
// Trace spans.

/// One completed span. `name` must be a string literal (events store the
/// pointer, never a copy).
struct SpanEvent {
  const char* name = nullptr;
  int64_t begin_ns = 0;
  int64_t end_ns = 0;
  int depth = 0;  ///< Nesting depth on the recording thread (1 = root).
};

/// All spans retained for one thread, oldest first.
struct ThreadTrace {
  int tid = 0;
  std::vector<SpanEvent> events;
  int64_t total_recorded = 0;  ///< Including events the ring overwrote.
};

/// Collects spans into per-thread ring buffers. Each thread writes its own
/// buffer under a dedicated (hence uncontended) mutex; the same mutex makes
/// Snapshot() safe while other threads keep recording. The ring keeps the
/// most recent kRingCapacity spans per thread — metrics are the complete
/// record, the trace is a window.
class TraceRecorder {
 public:
  static constexpr size_t kRingCapacity = 1 << 15;

  static TraceRecorder& Global();

  /// Appends a completed span for the calling thread.
  void Record(const char* name, int64_t begin_ns, int64_t end_ns, int depth);

  /// Drops all retained spans (threads stay registered).
  void Clear();

  /// Copies every thread's retained spans, in ring (time) order.
  std::vector<ThreadTrace> Snapshot() const;

  /// Spans overwritten by ring wrap-around, summed over threads.
  int64_t TotalDropped() const;

 private:
  TraceRecorder() = default;

  struct ThreadBuffer {
    std::mutex mu;
    int tid = 0;
    std::vector<SpanEvent> ring;  ///< Grows to kRingCapacity, then wraps.
    int64_t total = 0;
  };

  ThreadBuffer* BufferForThisThread();

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

#ifndef SSIN_TELEMETRY_DISABLED

namespace internal {
/// Current span nesting depth of this thread; Enter returns the new depth.
int EnterSpan();
void ExitSpan();
}  // namespace internal

/// RAII span: records [construction, destruction) into the trace recorder
/// when telemetry is enabled. The enabled check is latched at construction
/// so a mid-span toggle cannot produce an unbalanced event.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!Enabled()) return;
    name_ = name;
    depth_ = internal::EnterSpan();
    begin_ns_ = NowNs();
  }
  ~ScopedSpan() {
    if (name_ == nullptr) return;
    const int64_t end_ns = NowNs();
    TraceRecorder::Global().Record(name_, begin_ns_, end_ns, depth_);
    internal::ExitSpan();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t begin_ns_ = 0;
  int depth_ = 0;
};

#define SSIN_TELEMETRY_CONCAT_INNER(a, b) a##b
#define SSIN_TELEMETRY_CONCAT(a, b) SSIN_TELEMETRY_CONCAT_INNER(a, b)
/// Scoped trace span: SSIN_TRACE_SPAN("train.epoch"); the argument must be
/// a string literal. Compiles to nothing under -DSSIN_TELEMETRY=OFF.
#define SSIN_TRACE_SPAN(name)                                        \
  ::ssin::telemetry::ScopedSpan SSIN_TELEMETRY_CONCAT(ssin_trace_span_, \
                                                      __LINE__)(name)

#else  // SSIN_TELEMETRY_DISABLED

#define SSIN_TRACE_SPAN(name) static_cast<void>(0)

#endif  // SSIN_TELEMETRY_DISABLED

// ---------------------------------------------------------------------------
// Export / reports.

/// Schema version stamped into every telemetry JSON document.
constexpr int kTelemetryVersion = 1;

/// Writes a versioned snapshot object — {"telemetry_version": 1, counters,
/// gauges, histograms, spans} — as the *value* following an open Key().
/// Used by the benches to embed telemetry into their BENCH_*.json files.
void WriteSnapshotJson(JsonWriter* writer);

/// Complete telemetry report: the snapshot above plus the Chrome
/// trace_event list ("traceEvents", loadable in chrome://tracing and
/// Perfetto — extra top-level keys are ignored by both) and a "kind" tag
/// ("train"/"serve"). Returns the JSON document.
std::string ReportJson(const std::string& kind);

/// Writes ReportJson(kind) to `path`. Returns false on IO failure.
bool WriteReport(const std::string& kind, const std::string& path);

/// Human-readable hierarchical time breakdown of the retained spans:
/// children nested under the spans that contained them (by timestamp),
/// aggregated across threads, siblings ordered by total time, with
/// per-node count / total / share-of-parent.
std::string HierarchyText();

/// Resets the global registry and clears the trace recorder — the benches
/// and RunEvaluation call this between the train and serve phases so each
/// report covers exactly one phase.
void ResetAll();

}  // namespace telemetry
}  // namespace ssin

#endif  // SSIN_COMMON_TELEMETRY_H_
