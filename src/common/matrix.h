#ifndef SSIN_COMMON_MATRIX_H_
#define SSIN_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace ssin {

/// Dense row-major double matrix used by the classical interpolators
/// (thin-plate splines, kriging systems). Deliberately separate from the
/// float32 autograd Tensor in src/tensor: solver code wants double precision
/// and no tape overhead.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    SSIN_CHECK_GE(rows, 0);
    SSIN_CHECK_GE(cols, 0);
  }

  static Matrix Identity(int n) {
    Matrix m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) {
    SSIN_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    SSIN_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix Transposed() const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix ScaledBy(double s) const;

  /// Frobenius norm.
  double Norm() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by LU decomposition with partial pivoting.
/// Returns false when A is (numerically) singular. A is n x n, b has n
/// entries; on success *x holds the solution.
bool SolveLinearSystem(const Matrix& a, const std::vector<double>& b,
                       std::vector<double>* x);

/// Solves A X = B for multiple right-hand sides (B is n x k).
bool SolveLinearSystem(const Matrix& a, const Matrix& b, Matrix* x);

/// Inverts a square matrix via LU; returns false if singular.
bool Invert(const Matrix& a, Matrix* inv);

/// Cholesky factorization of an SPD matrix: A = L L^T with L lower
/// triangular. Returns false if A is not positive definite.
bool Cholesky(const Matrix& a, Matrix* l);

/// Solves the least squares problem min ||A x - b||_2 through the normal
/// equations with Tikhonov damping `ridge` (used by variogram fitting where
/// the design matrix can be poorly conditioned).
bool SolveLeastSquares(const Matrix& a, const std::vector<double>& b,
                       std::vector<double>* x, double ridge = 0.0);

}  // namespace ssin

#endif  // SSIN_COMMON_MATRIX_H_
