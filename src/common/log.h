#ifndef SSIN_COMMON_LOG_H_
#define SSIN_COMMON_LOG_H_

#include <sstream>

/// \file
/// Minimal leveled logger: `SSIN_LOG(Info) << "epoch " << e;` writes
/// "[ssin I] epoch 3" to stderr as one fprintf (so concurrent threads never
/// interleave mid-line). The minimum level defaults to Info and can be
/// overridden with the SSIN_LOG_LEVEL environment variable (DEBUG, INFO,
/// WARN, ERROR — or 0-3), parsed once at first use; SetMinLogLevel()
/// overrides it programmatically (tests). Messages below the minimum level
/// never evaluate their stream arguments.

namespace ssin {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// The effective minimum level (env-derived unless overridden).
LogLevel MinLogLevel();

/// Programmatic override, taking precedence over SSIN_LOG_LEVEL.
void SetMinLogLevel(LogLevel level);

namespace internal {

/// Stream sink for one log line; flushes to stderr on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ssin

/// SSIN_LOG(Info) << ...;  — severity is one of Debug, Info, Warn, Error.
/// Same dangling-else construction as SSIN_CHECK: below-threshold messages
/// skip both formatting and the stderr write.
#define SSIN_LOG(severity)                                            \
  if (::ssin::LogLevel::k##severity < ::ssin::MinLogLevel()) {        \
  } else /* NOLINT */                                                 \
    ::ssin::internal::LogMessage(::ssin::LogLevel::k##severity)

#endif  // SSIN_COMMON_LOG_H_
