#ifndef SSIN_COMMON_SIMD_H_
#define SSIN_COMMON_SIMD_H_

#include <cmath>
#include <cstdint>

/// \file
/// Compile-time SIMD dispatch layer for the hot serving kernels.
///
/// One instruction set is selected per build (never at runtime):
///
///   SSIN_SIMD_AVX2     x86-64 with AVX2+FMA (CMake adds -mavx2 -mfma when
///                      the compiler supports them and SSIN_SIMD is ON)
///   SSIN_SIMD_NEON     aarch64 / ARM with NEON
///   SSIN_SIMD_PORTABLE everything else: plain loops annotated with
///                      '#pragma omp simd' (-fopenmp-simd, no OpenMP
///                      runtime) so auto-vectorizers may still kick in
///
/// Building with -DSSIN_SIMD=OFF defines SSIN_SIMD_DISABLED and forces the
/// portable path with no pragmas — bit-compatible with the scalar
/// reference.
///
/// Kernels are written once against a *policy struct* carrying the
/// primitive operations (dot products, axpy, row reductions), templated on
/// the element type:
///
///   ScalarOps  strictly sequential loops — the historical kernel
///              arithmetic, kept callable as the bit-exact f64 reference
///              for the differential kernel tests
///   VecOps     the ISA-dispatched implementations used in production
///
/// VecOps reassociates reductions (vector-lane partial sums), so its f64
/// results can differ from ScalarOps in the last bits; the differential
/// harness (tests/kernel_differential_test.cc) pins the divergence to
/// <= 1e-12 relative. Both policies are deterministic: the same inputs
/// always produce the same outputs, independent of thread count, because
/// every output element is produced by exactly one call in a fixed order.
///
/// To add a vectorized kernel: write it as a template over <typename T,
/// typename Ops> using only Ops primitives (add new primitives to BOTH
/// policy structs), instantiate ScalarOps next to VecOps, and add a sweep
/// to tests/kernel_differential_test.cc comparing the two before switching
/// any caller to VecOps.

#if !defined(SSIN_SIMD_DISABLED) && defined(__AVX2__) && defined(__FMA__)
#define SSIN_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(SSIN_SIMD_DISABLED) && defined(__ARM_NEON)
#define SSIN_SIMD_NEON 1
#include <arm_neon.h>
#else
#define SSIN_SIMD_PORTABLE 1
#endif

namespace ssin {
namespace simd {

/// Name of the ISA the build dispatches to — recorded by benches so a
/// BENCH_*.json is self-describing.
inline const char* IsaName() {
#if defined(SSIN_SIMD_AVX2)
  return "avx2";
#elif defined(SSIN_SIMD_NEON)
  return "neon";
#elif defined(SSIN_SIMD_DISABLED)
  return "scalar";
#else
  return "portable";
#endif
}

#if defined(SSIN_SIMD_AVX2)

namespace internal {

inline double HSum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, swapped));
}

inline float HSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

}  // namespace internal

#endif  // SSIN_SIMD_AVX2

/// Strictly sequential primitives: the exact arithmetic (operation order
/// included) of the historical scalar kernels. Differential reference.
struct ScalarOps {
  static constexpr bool kVectorized = false;

  template <typename T>
  static T Dot(const T* x, const T* y, int n) {
    T s = 0;
    for (int i = 0; i < n; ++i) s += x[i] * y[i];
    return s;
  }

  template <typename T>
  static T Dot3(const T* x, const T* y, const T* z, int n) {
    T s = 0;
    for (int i = 0; i < n; ++i) s += x[i] * y[i] * z[i];
    return s;
  }

  /// out[i] += a * x[i]
  template <typename T>
  static void Axpy(T a, const T* x, T* out, int n) {
    for (int i = 0; i < n; ++i) out[i] += a * x[i];
  }

  /// out[i] += a0*x0[i] + a1*x1[i] + a2*x2[i] + a3*x3[i]
  template <typename T>
  static void Axpy4(T a0, T a1, T a2, T a3, const T* x0, const T* x1,
                    const T* x2, const T* x3, T* out, int n) {
    for (int i = 0; i < n; ++i) {
      out[i] += a0 * x0[i] + a1 * x1[i] + a2 * x2[i] + a3 * x3[i];
    }
  }

  /// out[i] += x[i]
  template <typename T>
  static void Add(const T* x, T* out, int n) {
    for (int i = 0; i < n; ++i) out[i] += x[i];
  }

  /// x[i] = max(x[i], 0)
  template <typename T>
  static void Relu(T* x, int n) {
    for (int i = 0; i < n; ++i) {
      if (x[i] < T(0)) x[i] = T(0);
    }
  }

  template <typename T>
  static T Sum(const T* x, int n) {
    T s = 0;
    for (int i = 0; i < n; ++i) s += x[i];
    return s;
  }

  /// sum_i (x[i] - mean)^2
  template <typename T>
  static T SumSqDiff(const T* x, T mean, int n) {
    T s = 0;
    for (int i = 0; i < n; ++i) {
      const T d = x[i] - mean;
      s += d * d;
    }
    return s;
  }

  /// The layer-norm output row: out[i] = (x[i]-mean)*istd * gamma[i] +
  /// beta[i], optionally saving the normalized value into xhat.
  template <typename T>
  static void NormScale(const T* x, T mean, T istd, const T* gamma,
                        const T* beta, T* out, T* xhat, int n) {
    for (int i = 0; i < n; ++i) {
      const T xh = (x[i] - mean) * istd;
      if (xhat != nullptr) xhat[i] = xh;
      out[i] = xh * gamma[i] + beta[i];
    }
  }
};

/// ISA-dispatched primitives; same interface as ScalarOps. Reductions use
/// vector-lane partial sums (reassociated), elementwise ops are exact.
struct VecOps {
  static constexpr bool kVectorized = true;

#if defined(SSIN_SIMD_AVX2)

  static double Dot(const double* x, const double* y, int n) {
    __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd(), acc3 = _mm256_setzero_pd();
    int i = 0;
    for (; i + 16 <= n; i += 16) {
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i),
                             _mm256_loadu_pd(y + i), acc0);
      acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                             _mm256_loadu_pd(y + i + 4), acc1);
      acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 8),
                             _mm256_loadu_pd(y + i + 8), acc2);
      acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 12),
                             _mm256_loadu_pd(y + i + 12), acc3);
    }
    for (; i + 4 <= n; i += 4) {
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i),
                             _mm256_loadu_pd(y + i), acc0);
    }
    double s = internal::HSum(
        _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
    for (; i < n; ++i) s += x[i] * y[i];
    return s;
  }

  static float Dot(const float* x, const float* y, int n) {
    __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
    int i = 0;
    for (; i + 16 <= n; i += 16) {
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                             _mm256_loadu_ps(y + i), acc0);
      acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8),
                             _mm256_loadu_ps(y + i + 8), acc1);
    }
    for (; i + 8 <= n; i += 8) {
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                             _mm256_loadu_ps(y + i), acc0);
    }
    float s = internal::HSum(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i) s += x[i] * y[i];
    return s;
  }

  static double Dot3(const double* x, const double* y, const double* z,
                     int n) {
    __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
    int i = 0;
    for (; i + 8 <= n; i += 8) {
      acc0 = _mm256_fmadd_pd(
          _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)),
          _mm256_loadu_pd(z + i), acc0);
      acc1 = _mm256_fmadd_pd(
          _mm256_mul_pd(_mm256_loadu_pd(x + i + 4),
                        _mm256_loadu_pd(y + i + 4)),
          _mm256_loadu_pd(z + i + 4), acc1);
    }
    for (; i + 4 <= n; i += 4) {
      acc0 = _mm256_fmadd_pd(
          _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)),
          _mm256_loadu_pd(z + i), acc0);
    }
    double s = internal::HSum(_mm256_add_pd(acc0, acc1));
    for (; i < n; ++i) s += x[i] * y[i] * z[i];
    return s;
  }

  static float Dot3(const float* x, const float* y, const float* z, int n) {
    __m256 acc = _mm256_setzero_ps();
    int i = 0;
    for (; i + 8 <= n; i += 8) {
      acc = _mm256_fmadd_ps(
          _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)),
          _mm256_loadu_ps(z + i), acc);
    }
    float s = internal::HSum(acc);
    for (; i < n; ++i) s += x[i] * y[i] * z[i];
    return s;
  }

  static void Axpy(double a, const double* x, double* out, int n) {
    const __m256d va = _mm256_set1_pd(a);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_pd(out + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                                                _mm256_loadu_pd(out + i)));
    }
    for (; i < n; ++i) out[i] += a * x[i];
  }

  static void Axpy(float a, const float* x, float* out, int n) {
    const __m256 va = _mm256_set1_ps(a);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(out + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                                                _mm256_loadu_ps(out + i)));
    }
    for (; i < n; ++i) out[i] += a * x[i];
  }

  static void Axpy4(double a0, double a1, double a2, double a3,
                    const double* x0, const double* x1, const double* x2,
                    const double* x3, double* out, int n) {
    const __m256d v0 = _mm256_set1_pd(a0), v1 = _mm256_set1_pd(a1);
    const __m256d v2 = _mm256_set1_pd(a2), v3 = _mm256_set1_pd(a3);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
      __m256d acc = _mm256_loadu_pd(out + i);
      acc = _mm256_fmadd_pd(v0, _mm256_loadu_pd(x0 + i), acc);
      acc = _mm256_fmadd_pd(v1, _mm256_loadu_pd(x1 + i), acc);
      acc = _mm256_fmadd_pd(v2, _mm256_loadu_pd(x2 + i), acc);
      acc = _mm256_fmadd_pd(v3, _mm256_loadu_pd(x3 + i), acc);
      _mm256_storeu_pd(out + i, acc);
    }
    for (; i < n; ++i) {
      out[i] += a0 * x0[i] + a1 * x1[i] + a2 * x2[i] + a3 * x3[i];
    }
  }

  static void Axpy4(float a0, float a1, float a2, float a3, const float* x0,
                    const float* x1, const float* x2, const float* x3,
                    float* out, int n) {
    const __m256 v0 = _mm256_set1_ps(a0), v1 = _mm256_set1_ps(a1);
    const __m256 v2 = _mm256_set1_ps(a2), v3 = _mm256_set1_ps(a3);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
      __m256 acc = _mm256_loadu_ps(out + i);
      acc = _mm256_fmadd_ps(v0, _mm256_loadu_ps(x0 + i), acc);
      acc = _mm256_fmadd_ps(v1, _mm256_loadu_ps(x1 + i), acc);
      acc = _mm256_fmadd_ps(v2, _mm256_loadu_ps(x2 + i), acc);
      acc = _mm256_fmadd_ps(v3, _mm256_loadu_ps(x3 + i), acc);
      _mm256_storeu_ps(out + i, acc);
    }
    for (; i < n; ++i) {
      out[i] += a0 * x0[i] + a1 * x1[i] + a2 * x2[i] + a3 * x3[i];
    }
  }

  static void Add(const double* x, double* out, int n) {
    int i = 0;
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_pd(
          out + i, _mm256_add_pd(_mm256_loadu_pd(out + i),
                                 _mm256_loadu_pd(x + i)));
    }
    for (; i < n; ++i) out[i] += x[i];
  }

  static void Add(const float* x, float* out, int n) {
    int i = 0;
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(
          out + i, _mm256_add_ps(_mm256_loadu_ps(out + i),
                                 _mm256_loadu_ps(x + i)));
    }
    for (; i < n; ++i) out[i] += x[i];
  }

  static void Relu(double* x, int n) {
    const __m256d zero = _mm256_setzero_pd();
    int i = 0;
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_pd(x + i, _mm256_max_pd(_mm256_loadu_pd(x + i), zero));
    }
    for (; i < n; ++i) {
      if (x[i] < 0.0) x[i] = 0.0;
    }
  }

  static void Relu(float* x, int n) {
    const __m256 zero = _mm256_setzero_ps();
    int i = 0;
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(x + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
    }
    for (; i < n; ++i) {
      if (x[i] < 0.0f) x[i] = 0.0f;
    }
  }

  static double Sum(const double* x, int n) {
    __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
    int i = 0;
    for (; i + 8 <= n; i += 8) {
      acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
      acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(x + i + 4));
    }
    for (; i + 4 <= n; i += 4) {
      acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
    }
    double s = internal::HSum(_mm256_add_pd(acc0, acc1));
    for (; i < n; ++i) s += x[i];
    return s;
  }

  static float Sum(const float* x, int n) {
    __m256 acc = _mm256_setzero_ps();
    int i = 0;
    for (; i + 8 <= n; i += 8) acc = _mm256_add_ps(acc, _mm256_loadu_ps(x + i));
    float s = internal::HSum(acc);
    for (; i < n; ++i) s += x[i];
    return s;
  }

  static double SumSqDiff(const double* x, double mean, int n) {
    const __m256d vm = _mm256_set1_pd(mean);
    __m256d acc = _mm256_setzero_pd();
    int i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i), vm);
      acc = _mm256_fmadd_pd(d, d, acc);
    }
    double s = internal::HSum(acc);
    for (; i < n; ++i) {
      const double d = x[i] - mean;
      s += d * d;
    }
    return s;
  }

  static float SumSqDiff(const float* x, float mean, int n) {
    const __m256 vm = _mm256_set1_ps(mean);
    __m256 acc = _mm256_setzero_ps();
    int i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(x + i), vm);
      acc = _mm256_fmadd_ps(d, d, acc);
    }
    float s = internal::HSum(acc);
    for (; i < n; ++i) {
      const float d = x[i] - mean;
      s += d * d;
    }
    return s;
  }

  static void NormScale(const double* x, double mean, double istd,
                        const double* gamma, const double* beta, double* out,
                        double* xhat, int n) {
    const __m256d vm = _mm256_set1_pd(mean);
    const __m256d vi = _mm256_set1_pd(istd);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d xh =
          _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(x + i), vm), vi);
      if (xhat != nullptr) _mm256_storeu_pd(xhat + i, xh);
      _mm256_storeu_pd(out + i,
                       _mm256_fmadd_pd(xh, _mm256_loadu_pd(gamma + i),
                                       _mm256_loadu_pd(beta + i)));
    }
    for (; i < n; ++i) {
      const double xh = (x[i] - mean) * istd;
      if (xhat != nullptr) xhat[i] = xh;
      out[i] = xh * gamma[i] + beta[i];
    }
  }

  static void NormScale(const float* x, float mean, float istd,
                        const float* gamma, const float* beta, float* out,
                        float* xhat, int n) {
    const __m256 vm = _mm256_set1_ps(mean);
    const __m256 vi = _mm256_set1_ps(istd);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256 xh =
          _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vm), vi);
      if (xhat != nullptr) _mm256_storeu_ps(xhat + i, xh);
      _mm256_storeu_ps(out + i,
                       _mm256_fmadd_ps(xh, _mm256_loadu_ps(gamma + i),
                                       _mm256_loadu_ps(beta + i)));
    }
    for (; i < n; ++i) {
      const float xh = (x[i] - mean) * istd;
      if (xhat != nullptr) xhat[i] = xh;
      out[i] = xh * gamma[i] + beta[i];
    }
  }

#elif defined(SSIN_SIMD_NEON)

  static double Dot(const double* x, const double* y, int n) {
    float64x2_t acc0 = vdupq_n_f64(0.0), acc1 = vdupq_n_f64(0.0);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
      acc0 = vfmaq_f64(acc0, vld1q_f64(x + i), vld1q_f64(y + i));
      acc1 = vfmaq_f64(acc1, vld1q_f64(x + i + 2), vld1q_f64(y + i + 2));
    }
    double s = vaddvq_f64(vaddq_f64(acc0, acc1));
    for (; i < n; ++i) s += x[i] * y[i];
    return s;
  }

  static float Dot(const float* x, const float* y, int n) {
    float32x4_t acc = vdupq_n_f32(0.0f);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
      acc = vfmaq_f32(acc, vld1q_f32(x + i), vld1q_f32(y + i));
    }
    float s = vaddvq_f32(acc);
    for (; i < n; ++i) s += x[i] * y[i];
    return s;
  }

  static double Dot3(const double* x, const double* y, const double* z,
                     int n) {
    float64x2_t acc = vdupq_n_f64(0.0);
    int i = 0;
    for (; i + 2 <= n; i += 2) {
      acc = vfmaq_f64(acc, vmulq_f64(vld1q_f64(x + i), vld1q_f64(y + i)),
                      vld1q_f64(z + i));
    }
    double s = vaddvq_f64(acc);
    for (; i < n; ++i) s += x[i] * y[i] * z[i];
    return s;
  }

  static float Dot3(const float* x, const float* y, const float* z, int n) {
    float32x4_t acc = vdupq_n_f32(0.0f);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
      acc = vfmaq_f32(acc, vmulq_f32(vld1q_f32(x + i), vld1q_f32(y + i)),
                      vld1q_f32(z + i));
    }
    float s = vaddvq_f32(acc);
    for (; i < n; ++i) s += x[i] * y[i] * z[i];
    return s;
  }

  static void Axpy(double a, const double* x, double* out, int n) {
    const float64x2_t va = vdupq_n_f64(a);
    int i = 0;
    for (; i + 2 <= n; i += 2) {
      vst1q_f64(out + i, vfmaq_f64(vld1q_f64(out + i), va, vld1q_f64(x + i)));
    }
    for (; i < n; ++i) out[i] += a * x[i];
  }

  static void Axpy(float a, const float* x, float* out, int n) {
    const float32x4_t va = vdupq_n_f32(a);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
      vst1q_f32(out + i, vfmaq_f32(vld1q_f32(out + i), va, vld1q_f32(x + i)));
    }
    for (; i < n; ++i) out[i] += a * x[i];
  }

  template <typename T>
  static void Axpy4(T a0, T a1, T a2, T a3, const T* x0, const T* x1,
                    const T* x2, const T* x3, T* out, int n) {
    Axpy(a0, x0, out, n);
    Axpy(a1, x1, out, n);
    Axpy(a2, x2, out, n);
    Axpy(a3, x3, out, n);
  }

  template <typename T>
  static void Add(const T* x, T* out, int n) {
    for (int i = 0; i < n; ++i) out[i] += x[i];
  }

  template <typename T>
  static void Relu(T* x, int n) {
    for (int i = 0; i < n; ++i) {
      if (x[i] < T(0)) x[i] = T(0);
    }
  }

  template <typename T>
  static T Sum(const T* x, int n) {
    T s = 0;
    for (int i = 0; i < n; ++i) s += x[i];
    return s;
  }

  template <typename T>
  static T SumSqDiff(const T* x, T mean, int n) {
    T s = 0;
    for (int i = 0; i < n; ++i) {
      const T d = x[i] - mean;
      s += d * d;
    }
    return s;
  }

  template <typename T>
  static void NormScale(const T* x, T mean, T istd, const T* gamma,
                        const T* beta, T* out, T* xhat, int n) {
    ScalarOps::NormScale(x, mean, istd, gamma, beta, out, xhat, n);
  }

#else  // SSIN_SIMD_PORTABLE

  template <typename T>
  static T Dot(const T* x, const T* y, int n) {
    T s = 0;
#pragma omp simd reduction(+ : s)
    for (int i = 0; i < n; ++i) s += x[i] * y[i];
    return s;
  }

  template <typename T>
  static T Dot3(const T* x, const T* y, const T* z, int n) {
    T s = 0;
#pragma omp simd reduction(+ : s)
    for (int i = 0; i < n; ++i) s += x[i] * y[i] * z[i];
    return s;
  }

  template <typename T>
  static void Axpy(T a, const T* x, T* out, int n) {
#pragma omp simd
    for (int i = 0; i < n; ++i) out[i] += a * x[i];
  }

  template <typename T>
  static void Axpy4(T a0, T a1, T a2, T a3, const T* x0, const T* x1,
                    const T* x2, const T* x3, T* out, int n) {
#pragma omp simd
    for (int i = 0; i < n; ++i) {
      out[i] += a0 * x0[i] + a1 * x1[i] + a2 * x2[i] + a3 * x3[i];
    }
  }

  template <typename T>
  static void Add(const T* x, T* out, int n) {
#pragma omp simd
    for (int i = 0; i < n; ++i) out[i] += x[i];
  }

  template <typename T>
  static void Relu(T* x, int n) {
#pragma omp simd
    for (int i = 0; i < n; ++i) x[i] = x[i] < T(0) ? T(0) : x[i];
  }

  template <typename T>
  static T Sum(const T* x, int n) {
    T s = 0;
#pragma omp simd reduction(+ : s)
    for (int i = 0; i < n; ++i) s += x[i];
    return s;
  }

  template <typename T>
  static T SumSqDiff(const T* x, T mean, int n) {
    T s = 0;
#pragma omp simd reduction(+ : s)
    for (int i = 0; i < n; ++i) {
      const T d = x[i] - mean;
      s += d * d;
    }
    return s;
  }

  template <typename T>
  static void NormScale(const T* x, T mean, T istd, const T* gamma,
                        const T* beta, T* out, T* xhat, int n) {
    ScalarOps::NormScale(x, mean, istd, gamma, beta, out, xhat, n);
  }

#endif
};

// ------------------------------------------------------------------------
// Shared kernel templates. These are the single implementations behind the
// tensor-level matmul/layernorm entry points (src/tensor/ops.cc), the
// classical-solver Matrix product (src/common/matrix.cc), and the f32
// serving path — instantiated with VecOps in production and ScalarOps as
// the differential-test reference.

/// out[m,n] += a[m,k] * b[k,n], branchy sequential reference: skips zero a
/// entries (the historical MatMulConfig{blocked=false} kernel).
template <typename T>
void MatMulAccRef(const T* a, const T* b, T* out, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    const T* a_row = a + static_cast<int64_t>(i) * k;
    T* out_row = out + static_cast<int64_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const T aip = a_row[p];
      if (aip == T(0)) continue;
      const T* b_row = b + static_cast<int64_t>(p) * n;
      for (int j = 0; j < n; ++j) out_row[j] += aip * b_row[j];
    }
  }
}

/// Blocked MatMulAcc over rows [i_lo, i_hi): the inner-product dimension is
/// unrolled by 4 so each pass streams four resident b rows through out_row
/// with no data-dependent branch.
template <typename T, typename Ops>
void MatMulAccRows(const T* a, const T* b, T* out, int k, int n, int i_lo,
                   int i_hi) {
  for (int i = i_lo; i < i_hi; ++i) {
    const T* a_row = a + static_cast<int64_t>(i) * k;
    T* out_row = out + static_cast<int64_t>(i) * n;
    int p = 0;
    for (; p + 4 <= k; p += 4) {
      const T* b0 = b + static_cast<int64_t>(p) * n;
      Ops::Axpy4(a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3], b0,
                 b0 + n, b0 + 2 * n, b0 + 3 * n, out_row, n);
    }
    for (; p < k; ++p) {
      Ops::Axpy(a_row[p], b + static_cast<int64_t>(p) * n, out_row, n);
    }
  }
}

/// out[m,k] += dC[m,n] * B^T (dA for C = A*B), branchy reference.
template <typename T>
void MatMulAccBtRef(const T* dc, const T* b, T* out, int m, int n, int k) {
  for (int i = 0; i < m; ++i) {
    const T* dc_row = dc + static_cast<int64_t>(i) * n;
    T* out_row = out + static_cast<int64_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const T* b_row = b + static_cast<int64_t>(p) * n;
      T sum = 0;
      for (int j = 0; j < n; ++j) sum += dc_row[j] * b_row[j];
      out_row[p] += sum;
    }
  }
}

/// Blocked MatMulAccBt over rows [i_lo, i_hi): each out element is one
/// Ops::Dot.
template <typename T, typename Ops>
void MatMulAccBtRows(const T* dc, const T* b, T* out, int n, int k, int i_lo,
                     int i_hi) {
  for (int i = i_lo; i < i_hi; ++i) {
    const T* dc_row = dc + static_cast<int64_t>(i) * n;
    T* out_row = out + static_cast<int64_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      out_row[p] += Ops::Dot(dc_row, b + static_cast<int64_t>(p) * n, n);
    }
  }
}

/// out[k,n] += A^T[k,m] * dC[m,n] (dB for C = A*B), branchy reference.
template <typename T>
void MatMulAccAtRef(const T* a, const T* dc, T* out, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    const T* a_row = a + static_cast<int64_t>(i) * k;
    const T* dc_row = dc + static_cast<int64_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const T aip = a_row[p];
      if (aip == T(0)) continue;
      T* out_row = out + static_cast<int64_t>(p) * n;
      for (int j = 0; j < n; ++j) out_row[j] += aip * dc_row[j];
    }
  }
}

/// Blocked MatMulAccAt over *output* rows [p_lo, p_hi): the reduction
/// dimension m is tiled by 4, so four a/dc rows stay resident per pass and
/// each out row is written once per tile instead of once per i.
template <typename T, typename Ops>
void MatMulAccAtCols(const T* a, const T* dc, T* out, int m, int k, int n,
                     int p_lo, int p_hi) {
  int i = 0;
  for (; i + 4 <= m; i += 4) {
    const T* a0 = a + static_cast<int64_t>(i) * k;
    const T* d0 = dc + static_cast<int64_t>(i) * n;
    for (int p = p_lo; p < p_hi; ++p) {
      Ops::Axpy4(a0[p], a0[k + p], a0[2 * k + p], a0[3 * k + p], d0, d0 + n,
                 d0 + 2 * n, d0 + 3 * n,
                 out + static_cast<int64_t>(p) * n, n);
    }
  }
  for (; i < m; ++i) {
    const T* a_row = a + static_cast<int64_t>(i) * k;
    const T* dc_row = dc + static_cast<int64_t>(i) * n;
    for (int p = p_lo; p < p_hi; ++p) {
      Ops::Axpy(a_row[p], dc_row, out + static_cast<int64_t>(p) * n, n);
    }
  }
}

/// Layer norm over the last dimension of x [m,n]: out, and optionally the
/// saved statistics (xhat [m,n], inv_std [m]) the backward pass needs.
/// LayerNormRows<double, ScalarOps> is exactly the historical forward.
template <typename T, typename Ops>
void LayerNormRows(const T* x, const T* gamma, const T* beta, T eps, int m,
                   int n, T* out, T* xhat, T* inv_std) {
  for (int i = 0; i < m; ++i) {
    const T* x_row = x + static_cast<int64_t>(i) * n;
    const T mean = Ops::Sum(x_row, n) / static_cast<T>(n);
    const T var = Ops::SumSqDiff(x_row, mean, n) / static_cast<T>(n);
    const T istd = T(1) / std::sqrt(var + eps);
    if (inv_std != nullptr) inv_std[i] = istd;
    Ops::NormScale(x_row, mean, istd, gamma, beta,
                   out + static_cast<int64_t>(i) * n,
                   xhat != nullptr ? xhat + static_cast<int64_t>(i) * n
                                   : nullptr,
                   n);
  }
}

}  // namespace simd
}  // namespace ssin

#endif  // SSIN_COMMON_SIMD_H_
