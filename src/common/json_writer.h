#ifndef SSIN_COMMON_JSON_WRITER_H_
#define SSIN_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ssin {

/// Minimal streaming JSON builder for the benchmark result files
/// (BENCH_*.json). Produces strictly valid JSON: strings are escaped and
/// non-finite doubles are emitted as null — JSON has no inf/nan tokens,
/// and a bare `inf` in a results file breaks every downstream parser.
///
/// Usage is push-based; the writer tracks nesting and inserts commas:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("speedup"); w.Number(2.4);
///   w.Key("nse");     w.Number(metrics.nse);  // null when NaN
///   w.EndObject();
///   write w.str() to disk.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Object member key; must be directly followed by exactly one value
  /// (or container).
  void Key(const std::string& name);

  void String(const std::string& value);
  void Number(double value);  ///< null when !isfinite(value).
  void Int(int64_t value);
  void Bool(bool value);
  void Null();

  /// The document so far. Valid JSON once every container is closed.
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();
  void Escape(const std::string& value);

  std::string out_;
  /// One entry per open container: whether it already holds a value
  /// (controls comma insertion). `pending_key_` suppresses the comma
  /// between a key and its value.
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

/// Writes `content` to `path` atomically enough for bench output (write
/// then rename is overkill here; this is a plain overwrite). Returns false
/// on IO failure.
bool WriteFile(const std::string& path, const std::string& content);

}  // namespace ssin

#endif  // SSIN_COMMON_JSON_WRITER_H_
