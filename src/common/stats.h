#ifndef SSIN_COMMON_STATS_H_
#define SSIN_COMMON_STATS_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace ssin {

/// Mean and (population) standard deviation of a sample.
struct MeanStd {
  double mean = 0.0;
  double std = 1.0;
};

/// Computes mean and population standard deviation. If the standard deviation
/// is numerically zero it is clamped to `min_std` so callers can divide by it
/// safely (the SSIN instance-wise standardization divides by per-sequence
/// std, which can vanish when every gauge reports the same value).
MeanStd ComputeMeanStd(const std::vector<double>& values,
                       double min_std = 1e-8);

/// Pearson correlation of two equal-length samples; 0 when degenerate.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Quantile via linear interpolation of the sorted sample, q in [0, 1].
double Quantile(std::vector<double> values, double q);

/// Streaming accumulator for mean/variance (Welford).
class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const {
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Finalizes into the two-pass ComputeMeanStd contract: population std,
  /// clamped to `min_std` so callers can divide by it safely. Lets streaming
  /// consumers replace a vector + ComputeMeanStd pair without changing the
  /// downstream standardization semantics.
  MeanStd ToMeanStd(double min_std = 1e-8) const {
    MeanStd out;
    out.mean = mean();
    out.std = stddev();
    if (out.std < min_std) out.std = min_std;
    return out;
  }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace ssin

#endif  // SSIN_COMMON_STATS_H_
