#ifndef SSIN_COMMON_TIMER_H_
#define SSIN_COMMON_TIMER_H_

#include <chrono>

namespace ssin {

/// Wall-clock stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ssin

#endif  // SSIN_COMMON_TIMER_H_
