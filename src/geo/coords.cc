#include "geo/coords.h"

namespace ssin {

double HaversineKm(const LatLon& a, const LatLon& b) {
  const double lat1 = DegToRad(a.lat);
  const double lat2 = DegToRad(b.lat);
  const double dlat = lat2 - lat1;
  const double dlon = DegToRad(b.lon - a.lon);
  const double s = std::sin(dlat / 2.0) * std::sin(dlat / 2.0) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2.0) *
                       std::sin(dlon / 2.0);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

double AzimuthRad(const LatLon& a, const LatLon& b) {
  const double lat1 = DegToRad(a.lat);
  const double lat2 = DegToRad(b.lat);
  const double dlon = DegToRad(b.lon - a.lon);
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double azimuth = std::atan2(y, x);
  if (azimuth < 0.0) azimuth += 2.0 * kPi;
  return azimuth;
}

PointKm ProjectEquirectangular(const LatLon& p, const LatLon& origin) {
  const double lat0 = DegToRad(origin.lat);
  PointKm out;
  out.x = DegToRad(p.lon - origin.lon) * std::cos(lat0) * kEarthRadiusKm;
  out.y = DegToRad(p.lat - origin.lat) * kEarthRadiusKm;
  return out;
}

double DistanceKm(const PointKm& a, const PointKm& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  return std::sqrt(dx * dx + dy * dy);
}

double AzimuthRad(const PointKm& a, const PointKm& b) {
  // atan2(east displacement, north displacement): clockwise from north.
  double azimuth = std::atan2(b.x - a.x, b.y - a.y);
  if (azimuth < 0.0) azimuth += 2.0 * kPi;
  return azimuth;
}

}  // namespace ssin
