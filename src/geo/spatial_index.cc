#include "geo/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"

namespace ssin {

namespace {

/// Squared Euclidean distance — the query ordering key. Squaring is
/// monotone, so (d2, index) ordering equals (distance, index) ordering
/// while avoiding a sqrt per candidate.
double Dist2(const PointKm& a, const PointKm& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

using Candidate = std::pair<double, int>;  // (squared distance, index)

}  // namespace

SpatialIndex::SpatialIndex(std::vector<PointKm> points)
    : points_(std::move(points)) {
  const int n = size();
  if (n == 0) return;

  min_x_ = points_[0].x;
  min_y_ = points_[0].y;
  double max_x = points_[0].x, max_y = points_[0].y;
  for (const PointKm& p : points_) {
    min_x_ = std::min(min_x_, p.x);
    max_x = std::max(max_x, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double span_x = max_x - min_x_;
  const double span_y = max_y - min_y_;

  // Square cells sized for ~1 point per cell on a uniform network; the
  // grid resolution is capped so pathological extents cannot allocate an
  // unbounded bucket array. Degenerate spans collapse to one cell along
  // that axis (queries then scan linearly — correct, just unpruned).
  const double area = span_x * span_y;
  double cell = area > 0.0 ? std::sqrt(area / n) : 0.0;
  if (!(cell > 0.0)) cell = std::max({span_x, span_y, 1.0});
  constexpr int kMaxCellsPerAxis = 4096;
  cols_ = std::min(static_cast<int>(span_x / cell) + 1, kMaxCellsPerAxis);
  rows_ = std::min(static_cast<int>(span_y / cell) + 1, kMaxCellsPerAxis);
  cell_w_ = span_x / cols_;
  cell_h_ = span_y / rows_;

  cells_.assign(static_cast<size_t>(rows_) * cols_, {});
  for (int i = 0; i < n; ++i) {
    cells_[static_cast<size_t>(CellRow(points_[i].y)) * cols_ +
           CellCol(points_[i].x)]
        .push_back(i);
  }
}

int SpatialIndex::CellCol(double x) const {
  if (cell_w_ <= 0.0) return 0;
  const int c = static_cast<int>((x - min_x_) / cell_w_);
  return std::min(std::max(c, 0), cols_ - 1);
}

int SpatialIndex::CellRow(double y) const {
  if (cell_h_ <= 0.0) return 0;
  const int r = static_cast<int>((y - min_y_) / cell_h_);
  return std::min(std::max(r, 0), rows_ - 1);
}

std::vector<int> SpatialIndex::KNearest(const PointKm& query, int k,
                                        int exclude) const {
  if (k <= 0 || size() == 0) return {};

  // Max-heap of the k best candidates so far, ordered by (d2, index):
  // heap front is the current worst, displaced when a better one appears.
  std::vector<Candidate> best;
  best.reserve(static_cast<size_t>(k) + 1);
  auto consider = [&](int idx) {
    if (idx == exclude) return;
    const Candidate c{Dist2(query, points_[idx]), idx};
    if (static_cast<int>(best.size()) < k) {
      best.push_back(c);
      std::push_heap(best.begin(), best.end());
    } else if (c < best.front()) {
      std::pop_heap(best.begin(), best.end());
      best.back() = c;
      std::push_heap(best.begin(), best.end());
    }
  };
  auto visit_cell = [&](int cc, int cr) {
    if (cc < 0 || cc >= cols_ || cr < 0 || cr >= rows_) return;
    for (int idx : cells_[static_cast<size_t>(cr) * cols_ + cc]) {
      consider(idx);
    }
  };

  // Expanding Chebyshev rings around the query's (clamped) cell. A cell at
  // ring r is at least (r-1) cell widths away along some axis, so once the
  // heap is full and that lower bound exceeds the current worst, no farther
  // ring can improve the result. Axes with a single cell contribute no
  // rings, so they are excluded from the bound.
  const int qc = CellCol(query.x);
  const int qr = CellRow(query.y);
  const int max_ring = std::max(cols_, rows_);
  double bound_cell = std::numeric_limits<double>::infinity();
  if (cols_ > 1) bound_cell = std::min(bound_cell, cell_w_);
  if (rows_ > 1) bound_cell = std::min(bound_cell, cell_h_);

  for (int r = 0; r <= max_ring; ++r) {
    if (static_cast<int>(best.size()) == k && r >= 2 &&
        std::isfinite(bound_cell)) {
      const double lb = (r - 1) * bound_cell;
      if (lb * lb > best.front().first) break;
    }
    if (r == 0) {
      visit_cell(qc, qr);
      continue;
    }
    for (int dc = -r; dc <= r; ++dc) {
      visit_cell(qc + dc, qr - r);
      visit_cell(qc + dc, qr + r);
    }
    for (int dr = -(r - 1); dr <= r - 1; ++dr) {
      visit_cell(qc - r, qr + dr);
      visit_cell(qc + r, qr + dr);
    }
  }

  std::sort(best.begin(), best.end());
  std::vector<int> out;
  out.reserve(best.size());
  for (const Candidate& c : best) out.push_back(c.second);
  return out;
}

std::vector<int> SpatialIndex::WithinRadius(const PointKm& query,
                                            double radius_km,
                                            int exclude) const {
  if (radius_km < 0.0 || size() == 0) return {};
  const double r2 = radius_km * radius_km;

  std::vector<Candidate> hits;
  const int c0 = CellCol(query.x - radius_km);
  const int c1 = CellCol(query.x + radius_km);
  const int r0 = CellRow(query.y - radius_km);
  const int r1 = CellRow(query.y + radius_km);
  for (int cr = r0; cr <= r1; ++cr) {
    for (int cc = c0; cc <= c1; ++cc) {
      for (int idx : cells_[static_cast<size_t>(cr) * cols_ + cc]) {
        if (idx == exclude) continue;
        const double d2 = Dist2(query, points_[idx]);
        if (d2 <= r2) hits.emplace_back(d2, idx);
      }
    }
  }
  std::sort(hits.begin(), hits.end());
  std::vector<int> out;
  out.reserve(hits.size());
  for (const Candidate& c : hits) out.push_back(c.second);
  return out;
}

std::vector<int> BruteForceKNearest(const std::vector<PointKm>& points,
                                    const PointKm& query, int k,
                                    int exclude) {
  if (k <= 0) return {};
  std::vector<Candidate> all;
  all.reserve(points.size());
  for (int i = 0; i < static_cast<int>(points.size()); ++i) {
    if (i == exclude) continue;
    all.emplace_back(Dist2(query, points[i]), i);
  }
  const size_t take = std::min(static_cast<size_t>(k), all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end());
  std::vector<int> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(all[i].second);
  return out;
}

}  // namespace ssin
