#ifndef SSIN_GEO_ROAD_GRAPH_H_
#define SSIN_GEO_ROAD_GRAPH_H_

#include <limits>
#include <vector>

#include "common/matrix.h"
#include "geo/coords.h"

namespace ssin {

/// Undirected weighted road network used by the traffic interpolation case
/// study (paper §4.3): sensor correlation follows travel distance on this
/// graph rather than geographic distance.
class RoadGraph {
 public:
  static constexpr double kUnreachable =
      std::numeric_limits<double>::infinity();

  /// Adds a node at the given planar position; returns its id.
  int AddNode(const PointKm& position);

  /// Adds an undirected edge. Length defaults to the Euclidean distance
  /// between the endpoints; pass an explicit length for curved segments.
  void AddEdge(int a, int b, double length_km = -1.0);

  int num_nodes() const { return static_cast<int>(positions_.size()); }
  const PointKm& position(int id) const { return positions_[id]; }
  const std::vector<PointKm>& positions() const { return positions_; }

  /// Single-source shortest path travel distances (Dijkstra).
  std::vector<double> ShortestPathsFrom(int source) const;

  /// All-pairs travel distance matrix; kUnreachable for disconnected pairs.
  Matrix AllPairsTravelDistance() const;

 private:
  struct Edge {
    int to;
    double length;
  };

  std::vector<PointKm> positions_;
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace ssin

#endif  // SSIN_GEO_ROAD_GRAPH_H_
