#ifndef SSIN_GEO_COORDS_H_
#define SSIN_GEO_COORDS_H_

#include <cmath>

namespace ssin {

/// Geographic position in decimal degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

/// Planar position in kilometers (local projection).
struct PointKm {
  double x = 0.0;  ///< East.
  double y = 0.0;  ///< North.
};

inline constexpr double kEarthRadiusKm = 6371.0088;
inline constexpr double kPi = 3.14159265358979323846;

inline double DegToRad(double deg) { return deg * kPi / 180.0; }
inline double RadToDeg(double rad) { return rad * 180.0 / kPi; }

/// Great-circle distance in km (haversine).
double HaversineKm(const LatLon& a, const LatLon& b);

/// Initial bearing from a to b, in radians in [0, 2*pi): the azimuth of the
/// paper's relative position r_ij — the angle between north and the line
/// connecting the two locations, measured clockwise.
double AzimuthRad(const LatLon& a, const LatLon& b);

/// Equirectangular projection around a reference latitude; adequate for the
/// city/state-scale regions (HK ~50 km, BW ~250 km) this library targets.
PointKm ProjectEquirectangular(const LatLon& p, const LatLon& origin);

/// Euclidean helpers on projected points.
double DistanceKm(const PointKm& a, const PointKm& b);

/// Azimuth (clockwise from north, [0, 2*pi)) on the projected plane.
double AzimuthRad(const PointKm& a, const PointKm& b);

}  // namespace ssin

#endif  // SSIN_GEO_COORDS_H_
