#include "geo/relpos.h"

#include <climits>
#include <cmath>

namespace ssin {

int64_t DenseRelPosRows(int length) {
  SSIN_CHECK_GE(length, 0);
  const int64_t rows = static_cast<int64_t>(length) * length;
  // Tensor dimensions are int: reject unrepresentable dense shapes cleanly
  // instead of wrapping negative (L >= 46341 overflows `length * length`).
  SSIN_CHECK_LE(rows, static_cast<int64_t>(INT_MAX))
      << "dense [L*L] relpos shape overflows a Tensor dimension at L="
      << length << "; use the packed pair-row APIs instead";
  return rows;
}

namespace {

Tensor BuildRelPosImpl(const std::vector<PointKm>& points,
                       const Matrix* distance) {
  const int length = static_cast<int>(points.size());
  Tensor relpos({static_cast<int>(DenseRelPosRows(length)), 2});
  for (int i = 0; i < length; ++i) {
    for (int j = 0; j < length; ++j) {
      const int64_t row = static_cast<int64_t>(i) * length + j;
      if (i == j) {
        relpos[row * 2] = 0.0;
        relpos[row * 2 + 1] = 0.0;
        continue;
      }
      relpos[row * 2] = distance != nullptr
                            ? (*distance)(i, j)
                            : DistanceKm(points[i], points[j]);
      relpos[row * 2 + 1] = AzimuthRad(points[i], points[j]);
    }
  }
  return relpos;
}

}  // namespace

Tensor BuildRelPos(const std::vector<PointKm>& points) {
  return BuildRelPosImpl(points, nullptr);
}

Tensor BuildRelPos(const std::vector<PointKm>& points,
                   const Matrix& distance) {
  SSIN_CHECK_EQ(distance.rows(), static_cast<int>(points.size()));
  SSIN_CHECK_EQ(distance.cols(), static_cast<int>(points.size()));
  return BuildRelPosImpl(points, &distance);
}

RelPosStats ComputeRelPosStats(const Tensor& relpos) {
  SSIN_CHECK_EQ(relpos.rank(), 2);
  SSIN_CHECK_EQ(relpos.dim(1), 2);
  const int64_t pairs = relpos.dim(0);
  const int length = static_cast<int>(std::lround(
      std::sqrt(static_cast<double>(pairs))));
  SSIN_CHECK_EQ(static_cast<int64_t>(length) * length, pairs);

  // One streaming pass over the off-diagonal pairs (the diagonal rows are
  // the (0, 0) self-pair convention, not samples). The old implementation
  // copied every sample into transient vectors first — 2 * L^2 doubles of
  // peak memory, and it reserved `pairs` entries although the diagonal is
  // always skipped.
  RunningStats dists, azims;
  for (int i = 0; i < length; ++i) {
    for (int j = 0; j < length; ++j) {
      if (i == j) continue;
      const int64_t row = static_cast<int64_t>(i) * length + j;
      dists.Add(relpos[row * 2]);
      azims.Add(relpos[row * 2 + 1]);
    }
  }
  RelPosStats stats;
  stats.distance = dists.ToMeanStd();
  stats.azimuth = azims.ToMeanStd();
  return stats;
}

Tensor StandardizeRelPos(const Tensor& relpos, const RelPosStats& stats) {
  Tensor out = relpos;
  const int64_t rows = out.dim(0);
  for (int64_t r = 0; r < rows; ++r) {
    out[r * 2] = (out[r * 2] - stats.distance.mean) / stats.distance.std;
    out[r * 2 + 1] = (out[r * 2 + 1] - stats.azimuth.mean) / stats.azimuth.std;
  }
  return out;
}

}  // namespace ssin
