#include "geo/road_graph.h"

#include <queue>
#include <utility>

namespace ssin {

int RoadGraph::AddNode(const PointKm& position) {
  positions_.push_back(position);
  adjacency_.emplace_back();
  return num_nodes() - 1;
}

void RoadGraph::AddEdge(int a, int b, double length_km) {
  SSIN_CHECK(a >= 0 && a < num_nodes());
  SSIN_CHECK(b >= 0 && b < num_nodes());
  SSIN_CHECK_NE(a, b);
  if (length_km < 0.0) length_km = DistanceKm(positions_[a], positions_[b]);
  adjacency_[a].push_back({b, length_km});
  adjacency_[b].push_back({a, length_km});
}

std::vector<double> RoadGraph::ShortestPathsFrom(int source) const {
  SSIN_CHECK(source >= 0 && source < num_nodes());
  std::vector<double> dist(num_nodes(), kUnreachable);
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  dist[source] = 0.0;
  queue.push({0.0, source});
  while (!queue.empty()) {
    auto [d, node] = queue.top();
    queue.pop();
    if (d > dist[node]) continue;
    for (const Edge& e : adjacency_[node]) {
      const double nd = d + e.length;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        queue.push({nd, e.to});
      }
    }
  }
  return dist;
}

Matrix RoadGraph::AllPairsTravelDistance() const {
  const int n = num_nodes();
  Matrix out(n, n);
  for (int s = 0; s < n; ++s) {
    std::vector<double> dist = ShortestPathsFrom(s);
    for (int t = 0; t < n; ++t) out(s, t) = dist[t];
  }
  return out;
}

}  // namespace ssin
