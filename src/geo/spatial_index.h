#ifndef SSIN_GEO_SPATIAL_INDEX_H_
#define SSIN_GEO_SPATIAL_INDEX_H_

#include <vector>

#include "geo/coords.h"

namespace ssin {

/// Uniform grid hash over planar station coordinates, answering k-nearest
/// and radius queries in roughly O(k) per query for quasi-uniform networks.
///
/// This is the scaling backbone for neighbor-limited shielded attention
/// (ROADMAP item 3): at L=10k stations a per-query candidate scan over all
/// observed stations is O(L*m); the grid restricts each query to the rings
/// of cells that can still contain a closer point.
///
/// Results are deterministic: ties are broken by ascending point index, so
/// the index and the brute-force reference (BruteForceKNearest) return the
/// same sequence even with duplicate coordinates. Euclidean planar distance
/// only — networks with a road-graph travel metric cannot be embedded in a
/// grid and must use the brute-force path (see
/// SpatialContext::NearestObservedKeys).
class SpatialIndex {
 public:
  /// Builds the grid over `points`. Degenerate inputs (empty set, all points
  /// coincident or collinear) degrade to a 1-cell-wide grid and stay
  /// correct, just without the pruning speedup.
  explicit SpatialIndex(std::vector<PointKm> points);

  /// Indices of the k nearest points to `query`, ascending by
  /// (squared distance, index); fewer than k when the set is smaller.
  /// `exclude` (an index into the indexed set, or -1) is never returned —
  /// callers use it to drop the query point itself.
  std::vector<int> KNearest(const PointKm& query, int k,
                            int exclude = -1) const;

  /// Indices of every point within `radius_km` of `query` (inclusive),
  /// ascending by (squared distance, index). Empty when no point is in
  /// range or the radius is negative.
  std::vector<int> WithinRadius(const PointKm& query, double radius_km,
                                int exclude = -1) const;

  int size() const { return static_cast<int>(points_.size()); }

 private:
  int CellCol(double x) const;
  int CellRow(double y) const;

  std::vector<PointKm> points_;
  /// Row-major [rows_ * cols_] buckets of point indices.
  std::vector<std::vector<int>> cells_;
  int cols_ = 0, rows_ = 0;
  double min_x_ = 0.0, min_y_ = 0.0;
  double cell_w_ = 0.0, cell_h_ = 0.0;
};

/// O(n) reference for KNearest with the same (squared distance, index)
/// ordering — the differential-test oracle, and the fallback metric-agnostic
/// building block for non-Euclidean distances.
std::vector<int> BruteForceKNearest(const std::vector<PointKm>& points,
                                    const PointKm& query, int k,
                                    int exclude = -1);

}  // namespace ssin

#endif  // SSIN_GEO_SPATIAL_INDEX_H_
