#ifndef SSIN_GEO_RELPOS_H_
#define SSIN_GEO_RELPOS_H_

#include <vector>

#include "common/matrix.h"
#include "common/stats.h"
#include "geo/coords.h"
#include "tensor/tensor.h"

namespace ssin {

/// Global standardization statistics for relative positions (paper §3.2:
/// positions are static, so distances and azimuths are standardized with
/// the statistics of the known training locations).
struct RelPosStats {
  MeanStd distance;
  MeanStd azimuth;
};

/// Largest sequence length any dense [L*L] relpos / SRPE path will serve.
/// Dense tensors are the bit-exact reference at paper scale (L=123) but grow
/// quadratically — at L=5k a single [L*L, d_k] SRPE embedding is ~3 GB.
/// Callers that need larger networks must use the packed plan-row APIs
/// (SpatialContext::RelposForPairs) with neighbor-limited shielding.
inline constexpr int kMaxDenseRelposLength = 2048;

/// Row count of the dense [L*L, 2] relpos tensor, computed in 64-bit: the
/// naive `length * length` overflows int at L >= 46341. Rejects (SSIN_CHECK)
/// products that do not fit a Tensor dimension instead of wrapping negative.
int64_t DenseRelPosRows(int length);

/// Builds the raw relative-position tensor r for a node sequence:
/// shape [L*L, 2]; row i*L+j holds [distance(p_i,p_j), azimuth(p_i->p_j)].
/// The self-pair azimuth is 0 by convention (distance is 0).
Tensor BuildRelPos(const std::vector<PointKm>& points);

/// Same, but with an externally supplied symmetric distance matrix (e.g.
/// road travel distances for traffic interpolation, paper §4.3); azimuths
/// still come from the planar coordinates.
Tensor BuildRelPos(const std::vector<PointKm>& points,
                   const Matrix& distance);

/// Statistics over the off-diagonal pairs of a raw relpos tensor.
RelPosStats ComputeRelPosStats(const Tensor& relpos);

/// Column-wise standardization of a raw relpos tensor with given stats.
Tensor StandardizeRelPos(const Tensor& relpos, const RelPosStats& stats);

}  // namespace ssin

#endif  // SSIN_GEO_RELPOS_H_
