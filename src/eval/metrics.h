#ifndef SSIN_EVAL_METRICS_H_
#define SSIN_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace ssin {

/// The paper's evaluation metrics (§4.1.3).
struct Metrics {
  double rmse = 0.0;
  double mae = 0.0;
  /// Nash-Sutcliffe efficiency, (-inf, 1], 1 is best. NaN when the truth
  /// variance is zero (a constant truth makes the denominator vanish, so
  /// the score is undefined rather than infinitely bad) — consumers must
  /// render it as "n/a" / null, never as a bare inf/nan token.
  double nse = 0.0;
  int64_t count = 0;
};

/// Streaming accumulator over (truth, prediction) pairs; NSE needs the
/// truth mean, so it is finalized in Compute().
class MetricsAccumulator {
 public:
  void Add(double truth, double prediction);
  void Merge(const MetricsAccumulator& other);

  /// Finalized metrics over everything added so far.
  Metrics Compute() const;

  int64_t count() const { return static_cast<int64_t>(truths_.size()); }

 private:
  std::vector<double> truths_;
  std::vector<double> predictions_;
};

/// Convenience one-shot computation.
Metrics ComputeMetrics(const std::vector<double>& truths,
                       const std::vector<double>& predictions);

}  // namespace ssin

#endif  // SSIN_EVAL_METRICS_H_
