#include "eval/runner.h"

#include <cmath>
#include <cstdio>

#include "common/timer.h"

namespace ssin {

std::vector<int> SelectedTimestamps(const SpatialDataset& data,
                                    const EvalOptions& options) {
  const int end = options.end < 0 ? data.num_timestamps() : options.end;
  SSIN_CHECK_LE(end, data.num_timestamps());
  SSIN_CHECK_GE(options.stride, 1);
  std::vector<int> timestamps;
  for (int t = options.begin; t < end; t += options.stride) {
    timestamps.push_back(t);
  }
  return timestamps;
}

namespace {

EvalResult RunEvaluation(SpatialInterpolator* method,
                         const SpatialDataset& data, const NodeSplit& split,
                         const EvalOptions& options, bool fit) {
  EvalResult result;
  result.method = method->Name();

  if (fit) {
    Timer fit_timer;
    method->Fit(data, split.train_ids);
    result.fit_seconds = fit_timer.Seconds();
  }

  // One timestamp-selection path and one serving call for every thread
  // count: InterpolateBatch answers the selected timestamps (fanning them
  // across a pool when options.num_threads allows), and metrics accumulate
  // on this thread in timestamp order — bit-identical across thread counts.
  const std::vector<int> timestamps = SelectedTimestamps(data, options);
  MetricsAccumulator acc;
  Timer interp_timer;
  std::vector<const std::vector<double>*> batch;
  batch.reserve(timestamps.size());
  for (int t : timestamps) batch.push_back(&data.Values(t));
  const std::vector<std::vector<double>> predictions = method->InterpolateBatch(
      batch, split.train_ids, split.test_ids, options.num_threads);
  for (size_t i = 0; i < timestamps.size(); ++i) {
    SSIN_CHECK_EQ(predictions[i].size(), split.test_ids.size());
    for (size_t q = 0; q < split.test_ids.size(); ++q) {
      acc.Add(data.Value(timestamps[i], split.test_ids[q]),
              predictions[i][q]);
    }
    ++result.timestamps_evaluated;
  }
  result.interpolate_seconds = interp_timer.Seconds();
  result.metrics = acc.Compute();
  return result;
}

}  // namespace

EvalResult EvaluateInterpolator(SpatialInterpolator* method,
                                const SpatialDataset& data,
                                const NodeSplit& split,
                                const EvalOptions& options) {
  return RunEvaluation(method, data, split, options, /*fit=*/true);
}

EvalResult EvaluateWithoutFit(SpatialInterpolator* method,
                              const SpatialDataset& data,
                              const NodeSplit& split,
                              const EvalOptions& options) {
  return RunEvaluation(method, data, split, options, /*fit=*/false);
}

void PrintResultsTable(const std::string& title,
                       const std::vector<std::string>& blocks,
                       const std::vector<std::vector<EvalResult>>& rows) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-18s", "Method");
  for (const std::string& block : blocks) {
    std::printf(" | %8s %8s %8s", (block + " RMSE").c_str(), "MAE", "NSE");
  }
  std::printf("\n");
  for (const auto& row : rows) {
    if (row.empty()) continue;
    std::printf("%-18s", row[0].method.c_str());
    for (const EvalResult& r : row) {
      std::printf(" | %8.4f %8.4f ", r.metrics.rmse, r.metrics.mae);
      // NSE is NaN when the truth variance is zero; print a readable
      // marker instead of a bare nan/inf token.
      if (std::isfinite(r.metrics.nse)) {
        std::printf("%8.4f", r.metrics.nse);
      } else {
        std::printf("%8s", "n/a");
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace ssin
