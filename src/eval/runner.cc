#include "eval/runner.h"

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/log.h"
#include "common/telemetry.h"
#include "common/timer.h"

namespace ssin {

std::vector<int> SelectedTimestamps(const SpatialDataset& data,
                                    const EvalOptions& options) {
  const int end = options.end < 0 ? data.num_timestamps() : options.end;
  SSIN_CHECK_LE(end, data.num_timestamps());
  SSIN_CHECK_GE(options.stride, 1);
  std::vector<int> timestamps;
  for (int t = options.begin; t < end; t += options.stride) {
    timestamps.push_back(t);
  }
  return timestamps;
}

namespace {

// Writes one phase's TelemetryReport and logs on failure; then resets the
// registry + span buffers so the next phase starts from zero.
void FlushTelemetryPhase(const EvalOptions& options, const char* kind) {
  // The default dir ("telemetry") is gitignored; create it on demand so
  // an instrumented run works from a fresh checkout. Failure to create is
  // surfaced by the write below.
  std::error_code ec;
  std::filesystem::create_directories(options.telemetry_dir, ec);
  const std::string path = options.telemetry_dir + "/telemetry_" + kind +
                           ".json";
  if (!telemetry::WriteReport(kind, path)) {
    SSIN_LOG(Warn) << "telemetry report write to " << path << " failed";
  }
  telemetry::ResetAll();
}

EvalResult RunEvaluation(SpatialInterpolator* method,
                         const SpatialDataset& data, const NodeSplit& split,
                         const EvalOptions& options, bool fit) {
  EvalResult result;
  result.method = method->Name();

  if (options.telemetry) {
    telemetry::SetEnabled(true);
    telemetry::ResetAll();  // Scope each report to this evaluation.
  }

  if (fit) {
    Timer fit_timer;
    {
      SSIN_TRACE_SPAN("eval.fit");
      method->Fit(data, split.train_ids);
    }
    result.fit_seconds = fit_timer.Seconds();
    if (options.telemetry) FlushTelemetryPhase(options, "train");
  }

  // One timestamp-selection path and one serving call for every thread
  // count: InterpolateBatch answers the selected timestamps (fanning them
  // across a pool when options.num_threads allows), and metrics accumulate
  // on this thread in timestamp order — bit-identical across thread counts.
  const std::vector<int> timestamps = SelectedTimestamps(data, options);
  MetricsAccumulator acc;
  Timer interp_timer;
  std::vector<const std::vector<double>*> batch;
  batch.reserve(timestamps.size());
  for (int t : timestamps) batch.push_back(&data.Values(t));
  std::vector<std::vector<double>> predictions;
  {
    SSIN_TRACE_SPAN("eval.interpolate");
    predictions = method->InterpolateBatch(
        batch, split.train_ids, split.test_ids, options.num_threads);
  }
  for (size_t i = 0; i < timestamps.size(); ++i) {
    SSIN_CHECK_EQ(predictions[i].size(), split.test_ids.size());
    for (size_t q = 0; q < split.test_ids.size(); ++q) {
      acc.Add(data.Value(timestamps[i], split.test_ids[q]),
              predictions[i][q]);
    }
    ++result.timestamps_evaluated;
  }
  result.interpolate_seconds = interp_timer.Seconds();
  result.metrics = acc.Compute();
  if (options.telemetry) FlushTelemetryPhase(options, "serve");
  return result;
}

}  // namespace

EvalResult EvaluateInterpolator(SpatialInterpolator* method,
                                const SpatialDataset& data,
                                const NodeSplit& split,
                                const EvalOptions& options) {
  return RunEvaluation(method, data, split, options, /*fit=*/true);
}

EvalResult EvaluateWithoutFit(SpatialInterpolator* method,
                              const SpatialDataset& data,
                              const NodeSplit& split,
                              const EvalOptions& options) {
  return RunEvaluation(method, data, split, options, /*fit=*/false);
}

void PrintResultsTable(const std::string& title,
                       const std::vector<std::string>& blocks,
                       const std::vector<std::vector<EvalResult>>& rows) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-18s", "Method");
  for (const std::string& block : blocks) {
    std::printf(" | %8s %8s %8s", (block + " RMSE").c_str(), "MAE", "NSE");
  }
  std::printf("\n");
  for (const auto& row : rows) {
    if (row.empty()) continue;
    std::printf("%-18s", row[0].method.c_str());
    for (const EvalResult& r : row) {
      std::printf(" | %8.4f %8.4f ", r.metrics.rmse, r.metrics.mae);
      // NSE is NaN when the truth variance is zero; print a readable
      // marker instead of a bare nan/inf token.
      if (std::isfinite(r.metrics.nse)) {
        std::printf("%8.4f", r.metrics.nse);
      } else {
        std::printf("%8s", "n/a");
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace ssin
