#include "eval/outage.h"

#include <algorithm>

namespace ssin {

OutageResult EvaluateUnderOutage(SpatialInterpolator* method,
                                 const SpatialDataset& data,
                                 const NodeSplit& split,
                                 double outage_fraction, Rng* rng,
                                 int begin, int end, int stride) {
  SSIN_CHECK_GE(outage_fraction, 0.0);
  SSIN_CHECK_LT(outage_fraction, 1.0);
  if (end < 0) end = data.num_timestamps();

  OutageResult result;
  result.outage_fraction = outage_fraction;
  MetricsAccumulator acc;
  for (int t = begin; t < end; t += stride) {
    // Independent outages per timestamp; always keep >= 2 survivors.
    std::vector<int> surviving;
    for (int id : split.train_ids) {
      if (!rng->Bernoulli(outage_fraction)) surviving.push_back(id);
    }
    while (surviving.size() < 2) {
      surviving.push_back(
          split.train_ids[static_cast<size_t>(rng->UniformInt(
              0, static_cast<int64_t>(split.train_ids.size()) - 1))]);
      std::sort(surviving.begin(), surviving.end());
      surviving.erase(std::unique(surviving.begin(), surviving.end()),
                      surviving.end());
    }
    const std::vector<double> predictions = method->InterpolateTimestamp(
        data.Values(t), surviving, split.test_ids);
    for (size_t q = 0; q < split.test_ids.size(); ++q) {
      acc.Add(data.Value(t, split.test_ids[q]), predictions[q]);
    }
  }
  result.metrics = acc.Compute();
  return result;
}

std::vector<OutageResult> OutageSweep(SpatialInterpolator* method,
                                      const SpatialDataset& data,
                                      const NodeSplit& split,
                                      const std::vector<double>& fractions,
                                      uint64_t seed, int stride) {
  std::vector<OutageResult> results;
  for (double fraction : fractions) {
    Rng rng(seed);  // Same outage pattern for every method/level pairing.
    results.push_back(EvaluateUnderOutage(method, data, split, fraction,
                                          &rng, 0, -1, stride));
  }
  return results;
}

}  // namespace ssin
