#ifndef SSIN_EVAL_CROSSVAL_H_
#define SSIN_EVAL_CROSSVAL_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/interpolation.h"
#include "eval/runner.h"

namespace ssin {

/// K-fold *spatial* cross-validation: stations are partitioned into k
/// folds; each fold is held out in turn and predicted from the others.
/// This is the standard way to estimate interpolation error when no
/// dedicated test network exists — a practitioner tool complementing the
/// paper's fixed 80/20 gauge split.
struct CrossValidationResult {
  std::vector<EvalResult> folds;
  Metrics pooled;  ///< Metrics over all (timestamp, held-out gauge) pairs.
};

/// Partitions {0..num_stations-1} into k disjoint folds of near-equal
/// size, in random order.
std::vector<std::vector<int>> MakeFolds(int num_stations, int k, Rng* rng);

/// Runs the full k-fold protocol. `factory` must produce a fresh
/// interpolator per fold (training state must not leak between folds).
/// With options.num_threads != 1 the folds fit and evaluate concurrently
/// on a pool: factories are still invoked serially on the calling thread
/// (they may share an Rng), each fold's interpolator is touched by exactly
/// one worker, and metrics are reduced in fold order, so the result is
/// identical to a serial run for deterministic interpolators.
CrossValidationResult CrossValidate(
    const std::function<std::unique_ptr<SpatialInterpolator>()>& factory,
    const SpatialDataset& data, int k, Rng* rng,
    const EvalOptions& options = EvalOptions());

}  // namespace ssin

#endif  // SSIN_EVAL_CROSSVAL_H_
