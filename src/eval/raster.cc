#include "eval/raster.h"

#include <algorithm>
#include <fstream>

#include "common/check.h"

namespace ssin {

Raster::Raster(int width, int height, double x0_km, double y0_km,
               double cell_km)
    : width_(width),
      height_(height),
      x0_km_(x0_km),
      y0_km_(y0_km),
      cell_km_(cell_km),
      values_(static_cast<size_t>(width) * height, 0.0) {
  SSIN_CHECK_GT(width, 0);
  SSIN_CHECK_GT(height, 0);
  SSIN_CHECK_GT(cell_km, 0.0);
}

double& Raster::At(int gx, int gy) {
  SSIN_DCHECK(gx >= 0 && gx < width_ && gy >= 0 && gy < height_);
  return values_[static_cast<size_t>(gy) * width_ + gx];
}

double Raster::At(int gx, int gy) const {
  return const_cast<Raster*>(this)->At(gx, gy);
}

PointKm Raster::CellCenter(int gx, int gy) const {
  return {x0_km_ + (gx + 0.5) * cell_km_, y0_km_ + (gy + 0.5) * cell_km_};
}

std::vector<PointKm> Raster::CellCenters() const {
  std::vector<PointKm> centers;
  centers.reserve(values_.size());
  for (int gy = 0; gy < height_; ++gy) {
    for (int gx = 0; gx < width_; ++gx) {
      centers.push_back(CellCenter(gx, gy));
    }
  }
  return centers;
}

void Raster::SetValues(const std::vector<double>& values) {
  SSIN_CHECK_EQ(values.size(), values_.size());
  values_ = values;
}

double Raster::MinValue() const {
  return *std::min_element(values_.begin(), values_.end());
}

double Raster::MaxValue() const {
  return *std::max_element(values_.begin(), values_.end());
}

double Raster::MeanValue() const {
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

bool Raster::WritePgm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const double lo = MinValue();
  const double hi = MaxValue();
  const double span = hi > lo ? hi - lo : 1.0;
  out << "P5\n" << width_ << " " << height_ << "\n255\n";
  // PGM rows run top to bottom; our rows run south to north.
  for (int gy = height_ - 1; gy >= 0; --gy) {
    for (int gx = 0; gx < width_; ++gx) {
      const double norm = (At(gx, gy) - lo) / span;
      out.put(static_cast<char>(static_cast<int>(norm * 255.0)));
    }
  }
  return out.good();
}

double Raster::FractionAbove(double threshold) const {
  int64_t count = 0;
  for (double v : values_) {
    if (v >= threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values_.size());
}

}  // namespace ssin
