#ifndef SSIN_EVAL_RASTER_H_
#define SSIN_EVAL_RASTER_H_

#include <string>
#include <vector>

#include "geo/coords.h"

namespace ssin {

/// A regular grid of interpolated values over a rectangular domain — the
/// "fine-grained rainfall distribution" deliverable the paper's
/// introduction motivates. Row-major, row 0 at the south edge.
class Raster {
 public:
  Raster(int width, int height, double x0_km, double y0_km,
         double cell_km);

  int width() const { return width_; }
  int height() const { return height_; }
  double cell_km() const { return cell_km_; }

  double& At(int gx, int gy);
  double At(int gx, int gy) const;

  /// Planar coordinates of a cell center.
  PointKm CellCenter(int gx, int gy) const;

  /// All cell centers in row-major order (the query list to hand to an
  /// interpolator).
  std::vector<PointKm> CellCenters() const;

  /// Fills values from a row-major vector (size width*height).
  void SetValues(const std::vector<double>& values);
  const std::vector<double>& values() const { return values_; }

  double MinValue() const;
  double MaxValue() const;
  double MeanValue() const;

  /// Writes a portable graymap (PGM) image, darkest = MinValue. A raster
  /// export any image viewer or GIS tool can open. Returns false on IO
  /// failure.
  bool WritePgm(const std::string& path) const;

  /// Areal statistics above a threshold (e.g. flood-warning coverage):
  /// fraction of cells with value >= threshold.
  double FractionAbove(double threshold) const;

 private:
  int width_, height_;
  double x0_km_, y0_km_, cell_km_;
  std::vector<double> values_;
};

}  // namespace ssin

#endif  // SSIN_EVAL_RASTER_H_
