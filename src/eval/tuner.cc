#include "eval/tuner.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace ssin {

std::string HyperParams::ToString() const {
  std::ostringstream out;
  out << "lr=" << learning_rate << " wd=" << weight_decay
      << " dropout=" << dropout << " hidden=" << hidden_dim
      << " kernel=" << kernel_length;
  return out.str();
}

HyperParams SampleHyperParams(Rng* rng) {
  HyperParams hp;
  // Log-uniform over the open intervals of Table 3.
  hp.learning_rate = std::pow(10.0, rng->Uniform(-4.0, -2.0));   // (0,0.01)
  hp.weight_decay = std::pow(10.0, rng->Uniform(-6.0, -3.0));    // (0,1e-3)
  hp.dropout = rng->Uniform(0.0, 0.5);
  static constexpr int kHidden[] = {4, 8, 16, 32, 64, 128};
  hp.hidden_dim = kHidden[rng->UniformInt(0, 5)];
  static constexpr double kKernel[] = {10.0, 5.0, 1.0, 0.5,
                                       0.1,  0.05, 0.01};
  hp.kernel_length = kKernel[rng->UniformInt(0, 6)];
  return hp;
}

TuningResult RandomSearch(const InterpolatorFactory& factory,
                          const SpatialDataset& data,
                          const std::vector<int>& train_ids, int trials,
                          Rng* rng, double val_fraction,
                          const EvalOptions& options) {
  SSIN_CHECK_GE(trials, 1);
  SSIN_CHECK_GT(train_ids.size(), 4u);

  // Hold out validation stations from the training set; the real test
  // gauges never enter the search.
  const int num_val = std::max(
      1, static_cast<int>(train_ids.size() * val_fraction + 0.5));
  std::vector<int> shuffled = train_ids;
  rng->Shuffle(&shuffled);
  NodeSplit inner;
  inner.test_ids.assign(shuffled.begin(), shuffled.begin() + num_val);
  inner.train_ids.assign(shuffled.begin() + num_val, shuffled.end());

  TuningResult result;
  double best_rmse = std::numeric_limits<double>::infinity();
  for (int t = 0; t < trials; ++t) {
    const HyperParams hp = SampleHyperParams(rng);
    std::unique_ptr<SpatialInterpolator> method = factory(hp);
    const EvalResult eval =
        EvaluateInterpolator(method.get(), data, inner, options);
    result.tried.push_back(hp);
    result.metrics.push_back(eval.metrics);
    if (eval.metrics.rmse < best_rmse) {
      best_rmse = eval.metrics.rmse;
      result.best = hp;
      result.best_metrics = eval.metrics;
    }
  }
  return result;
}

}  // namespace ssin
