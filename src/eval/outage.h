#ifndef SSIN_EVAL_OUTAGE_H_
#define SSIN_EVAL_OUTAGE_H_

#include <vector>

#include "common/rng.h"
#include "core/interpolation.h"
#include "eval/metrics.h"

namespace ssin {

/// Gauge-outage robustness evaluation (failure injection).
///
/// Real gauge networks lose stations to power cuts, clogging and telemetry
/// failures, so an operational interpolator must degrade gracefully when a
/// random subset of the observed stations drops out each hour. SSIN
/// handles a varying observed set natively (the shielded attention simply
/// sees fewer observed nodes); this harness quantifies the degradation for
/// any SpatialInterpolator.
struct OutageResult {
  double outage_fraction = 0.0;
  Metrics metrics;
};

/// Evaluates `method` under per-timestamp random outages: for each
/// evaluated timestamp, each train station independently drops out with
/// probability `outage_fraction`; predictions for the test stations use
/// the surviving ones. The method must already be Fit() on the full
/// training set (models are trained once and must survive outages at
/// serving time, which is the operational scenario).
OutageResult EvaluateUnderOutage(SpatialInterpolator* method,
                                 const SpatialDataset& data,
                                 const NodeSplit& split,
                                 double outage_fraction, Rng* rng,
                                 int begin = 0, int end = -1,
                                 int stride = 1);

/// Sweeps several outage levels (fit must have been done by the caller).
std::vector<OutageResult> OutageSweep(SpatialInterpolator* method,
                                      const SpatialDataset& data,
                                      const NodeSplit& split,
                                      const std::vector<double>& fractions,
                                      uint64_t seed, int stride = 1);

}  // namespace ssin

#endif  // SSIN_EVAL_OUTAGE_H_
