#include "eval/crossval.h"

#include <algorithm>

namespace ssin {

std::vector<std::vector<int>> MakeFolds(int num_stations, int k, Rng* rng) {
  SSIN_CHECK_GE(k, 2);
  SSIN_CHECK_GE(num_stations, k);
  std::vector<int> perm = rng->Permutation(num_stations);
  std::vector<std::vector<int>> folds(k);
  for (int i = 0; i < num_stations; ++i) {
    folds[i % k].push_back(perm[i]);
  }
  for (auto& fold : folds) std::sort(fold.begin(), fold.end());
  return folds;
}

CrossValidationResult CrossValidate(
    const std::function<std::unique_ptr<SpatialInterpolator>()>& factory,
    const SpatialDataset& data, int k, Rng* rng,
    const EvalOptions& options) {
  const std::vector<std::vector<int>> folds =
      MakeFolds(data.num_stations(), k, rng);

  CrossValidationResult result;
  MetricsAccumulator pooled;
  for (int fold = 0; fold < k; ++fold) {
    NodeSplit split;
    split.test_ids = folds[fold];
    for (int other = 0; other < k; ++other) {
      if (other == fold) continue;
      split.train_ids.insert(split.train_ids.end(), folds[other].begin(),
                             folds[other].end());
    }
    std::sort(split.train_ids.begin(), split.train_ids.end());

    std::unique_ptr<SpatialInterpolator> method = factory();
    EvalResult eval = EvaluateInterpolator(method.get(), data, split,
                                           options);
    // Re-accumulate into the pooled metrics.
    const int end =
        options.end < 0 ? data.num_timestamps() : options.end;
    for (int t = options.begin; t < end; t += options.stride) {
      const std::vector<double> predictions = method->InterpolateTimestamp(
          data.Values(t), split.train_ids, split.test_ids);
      for (size_t q = 0; q < split.test_ids.size(); ++q) {
        pooled.Add(data.Value(t, split.test_ids[q]), predictions[q]);
      }
    }
    result.folds.push_back(std::move(eval));
  }
  result.pooled = pooled.Compute();
  return result;
}

}  // namespace ssin
