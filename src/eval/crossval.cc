#include "eval/crossval.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace ssin {

namespace {

NodeSplit SplitForFold(const std::vector<std::vector<int>>& folds,
                       int fold) {
  NodeSplit split;
  split.test_ids = folds[fold];
  for (int other = 0; other < static_cast<int>(folds.size()); ++other) {
    if (other == fold) continue;
    split.train_ids.insert(split.train_ids.end(), folds[other].begin(),
                           folds[other].end());
  }
  std::sort(split.train_ids.begin(), split.train_ids.end());
  return split;
}

}  // namespace

std::vector<std::vector<int>> MakeFolds(int num_stations, int k, Rng* rng) {
  SSIN_CHECK_GE(k, 2);
  SSIN_CHECK_GE(num_stations, k);
  std::vector<int> perm = rng->Permutation(num_stations);
  std::vector<std::vector<int>> folds(k);
  for (int i = 0; i < num_stations; ++i) {
    folds[i % k].push_back(perm[i]);
  }
  for (auto& fold : folds) std::sort(fold.begin(), fold.end());
  return folds;
}

CrossValidationResult CrossValidate(
    const std::function<std::unique_ptr<SpatialInterpolator>()>& factory,
    const SpatialDataset& data, int k, Rng* rng,
    const EvalOptions& options) {
  const std::vector<std::vector<int>> folds =
      MakeFolds(data.num_stations(), k, rng);

  CrossValidationResult result;
  MetricsAccumulator pooled;
  const int end = options.end < 0 ? data.num_timestamps() : options.end;
  const int num_threads = ThreadPool::ResolveThreadCount(options.num_threads);

  if (num_threads == 1) {
    for (int fold = 0; fold < k; ++fold) {
      const NodeSplit split = SplitForFold(folds, fold);
      std::unique_ptr<SpatialInterpolator> method = factory();
      EvalResult eval = EvaluateInterpolator(method.get(), data, split,
                                             options);
      // Re-accumulate into the pooled metrics.
      for (int t = options.begin; t < end; t += options.stride) {
        const std::vector<double> predictions = method->InterpolateTimestamp(
            data.Values(t), split.train_ids, split.test_ids);
        for (size_t q = 0; q < split.test_ids.size(); ++q) {
          pooled.Add(data.Value(t, split.test_ids[q]), predictions[q]);
        }
      }
      result.folds.push_back(std::move(eval));
    }
    result.pooled = pooled.Compute();
    return result;
  }

  // Parallel path: every interpolator is created serially on the calling
  // thread (factories may share an Rng or other mutable state), then folds
  // fit and evaluate concurrently; each fold's timestamps run serially
  // inside its worker. Pooled metrics are reduced on the calling thread in
  // (fold, timestamp) order, matching the serial run exactly.
  std::vector<NodeSplit> splits(k);
  std::vector<std::unique_ptr<SpatialInterpolator>> methods;
  for (int fold = 0; fold < k; ++fold) {
    splits[fold] = SplitForFold(folds, fold);
    methods.push_back(factory());
  }
  std::vector<EvalResult> fold_evals(k);
  std::vector<std::vector<std::vector<double>>> fold_predictions(k);
  EvalOptions fold_options = options;
  fold_options.num_threads = 1;  // Parallelism lives at the fold level.
  ThreadPool pool(num_threads);
  pool.ParallelFor(k, [&](int64_t fold, int /*slot*/) {
    const NodeSplit& split = splits[fold];
    fold_evals[fold] = EvaluateInterpolator(methods[fold].get(), data, split,
                                            fold_options);
    for (int t = options.begin; t < end; t += options.stride) {
      fold_predictions[fold].push_back(methods[fold]->InterpolateTimestamp(
          data.Values(t), split.train_ids, split.test_ids));
    }
  });
  for (int fold = 0; fold < k; ++fold) {
    size_t i = 0;
    for (int t = options.begin; t < end; t += options.stride, ++i) {
      const std::vector<double>& predictions = fold_predictions[fold][i];
      for (size_t q = 0; q < splits[fold].test_ids.size(); ++q) {
        pooled.Add(data.Value(t, splits[fold].test_ids[q]), predictions[q]);
      }
    }
    result.folds.push_back(std::move(fold_evals[fold]));
  }
  result.pooled = pooled.Compute();
  return result;
}

}  // namespace ssin
