#include "eval/metrics.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace ssin {

void MetricsAccumulator::Add(double truth, double prediction) {
  truths_.push_back(truth);
  predictions_.push_back(prediction);
}

void MetricsAccumulator::Merge(const MetricsAccumulator& other) {
  truths_.insert(truths_.end(), other.truths_.begin(), other.truths_.end());
  predictions_.insert(predictions_.end(), other.predictions_.begin(),
                      other.predictions_.end());
}

Metrics MetricsAccumulator::Compute() const {
  Metrics m;
  m.count = count();
  if (m.count == 0) return m;
  const double n = static_cast<double>(m.count);

  double truth_sum = 0.0;
  for (double t : truths_) truth_sum += t;
  const double truth_mean = truth_sum / n;

  double sq_err = 0.0, abs_err = 0.0, sq_dev = 0.0;
  for (size_t i = 0; i < truths_.size(); ++i) {
    const double e = truths_[i] - predictions_[i];
    sq_err += e * e;
    abs_err += std::fabs(e);
    const double d = truths_[i] - truth_mean;
    sq_dev += d * d;
  }
  m.rmse = std::sqrt(sq_err / n);
  m.mae = abs_err / n;
  m.nse = sq_dev > 0.0 ? 1.0 - sq_err / sq_dev
                       : std::numeric_limits<double>::quiet_NaN();
  return m;
}

Metrics ComputeMetrics(const std::vector<double>& truths,
                       const std::vector<double>& predictions) {
  SSIN_CHECK_EQ(truths.size(), predictions.size());
  MetricsAccumulator acc;
  for (size_t i = 0; i < truths.size(); ++i) {
    acc.Add(truths[i], predictions[i]);
  }
  return acc.Compute();
}

}  // namespace ssin
