#ifndef SSIN_EVAL_TUNER_H_
#define SSIN_EVAL_TUNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/interpolation.h"
#include "eval/runner.h"

namespace ssin {

/// Hyperparameter search harness implementing the paper's §4.1.4 protocol
/// for the GNN baselines: the paper searches learning rate, weight decay,
/// dropout, hidden dimension and the Gaussian-kernel length of the
/// adjacency matrix (its Table 3) "in a much larger search space than the
/// original papers" and reports the best configuration.
///
/// The search is random sampling over the Table 3 ranges, scored on a
/// validation split of the *training* stations (test gauges stay unseen).

/// One sampled configuration, in the units of paper Table 3.
struct HyperParams {
  double learning_rate = 1e-3;   ///< (0, 0.01)
  double weight_decay = 1e-5;    ///< (0, 1e-3)
  double dropout = 0.1;          ///< (0, 0.5)
  int hidden_dim = 32;           ///< {4, 8, 16, 32, 64, 128}
  double kernel_length = 1.0;    ///< {10, 5, 1, 0.5, 0.1, 0.05, 0.01}
                                 ///< x median pair distance

  std::string ToString() const;
};

/// Samples a configuration from the Table 3 ranges (log-uniform for the
/// continuous parameters, uniform over the listed grids).
HyperParams SampleHyperParams(Rng* rng);

/// Factory turning a configuration into a fresh interpolator.
using InterpolatorFactory =
    std::function<std::unique_ptr<SpatialInterpolator>(const HyperParams&)>;

struct TuningResult {
  HyperParams best;
  Metrics best_metrics;           ///< On the validation stations.
  std::vector<HyperParams> tried;
  std::vector<Metrics> metrics;   ///< Parallel to `tried`.
};

/// Runs `trials` random-search iterations: each samples hyperparameters,
/// trains on (train minus validation) stations, and scores RMSE on the
/// validation stations over `options`' timestamp range. `val_fraction` of
/// the training stations are held out for validation.
TuningResult RandomSearch(const InterpolatorFactory& factory,
                          const SpatialDataset& data,
                          const std::vector<int>& train_ids, int trials,
                          Rng* rng, double val_fraction = 0.2,
                          const EvalOptions& options = EvalOptions());

}  // namespace ssin

#endif  // SSIN_EVAL_TUNER_H_
