#ifndef SSIN_EVAL_RUNNER_H_
#define SSIN_EVAL_RUNNER_H_

#include <string>
#include <vector>

#include "core/interpolation.h"
#include "eval/metrics.h"

namespace ssin {

/// Evaluation options: which timestamps of the dataset to score.
struct EvalOptions {
  int begin = 0;
  int end = -1;    ///< Exclusive; -1 = all timestamps.
  int stride = 1;  ///< Evaluate every stride-th timestamp.
  /// Worker threads passed to the interpolator's InterpolateBatch; 0 = one
  /// per hardware thread, 1 = serial. Values > 1 require per-timestamp
  /// interpolation to be safe to run concurrently (true of every method in
  /// this repo after Fit(); predictions and metrics are reduced in
  /// timestamp order, so results are identical to a serial run). Fit()
  /// itself always runs on the calling thread.
  int num_threads = 1;

  /// Run telemetry: when true, the evaluation enables the process-wide
  /// telemetry runtime and writes one TelemetryReport per phase —
  /// `telemetry_train.json` after Fit() (when a fit runs) and
  /// `telemetry_serve.json` after the interpolation sweep — into
  /// `telemetry_dir` (created if missing; defaults to the gitignored
  /// `telemetry/` so instrumented runs never dirty the work tree). Each
  /// file is a versioned metrics report that is also a Chrome trace_event
  /// JSON (load it in chrome://tracing or Perfetto).
  /// The registry and span buffers are reset at each phase boundary so a
  /// report covers exactly its phase. Instrumentation never changes
  /// numeric results (pinned by the equivalence tests).
  bool telemetry = false;
  std::string telemetry_dir = "telemetry";
};

/// Result of evaluating one method on one dataset.
struct EvalResult {
  std::string method;
  Metrics metrics;
  double fit_seconds = 0.0;
  double interpolate_seconds = 0.0;
  int timestamps_evaluated = 0;
};

/// The timestamps an EvalOptions selects on `data`, in evaluation order.
/// Both the serial and the parallel evaluation paths iterate exactly this
/// list, so the two visit identical timestamp sets by construction.
std::vector<int> SelectedTimestamps(const SpatialDataset& data,
                                    const EvalOptions& options);

/// Runs the paper's evaluation protocol: the interpolator is Fit() on the
/// training stations' history, then for each evaluated timestamp predicts
/// the held-out stations from the training stations' readings; metrics
/// aggregate over all (timestamp, test station) pairs.
EvalResult EvaluateInterpolator(SpatialInterpolator* method,
                                const SpatialDataset& data,
                                const NodeSplit& split,
                                const EvalOptions& options = EvalOptions());

/// Variant that skips Fit() (for already-trained / transferred models).
EvalResult EvaluateWithoutFit(SpatialInterpolator* method,
                              const SpatialDataset& data,
                              const NodeSplit& split,
                              const EvalOptions& options = EvalOptions());

/// Prints a paper-style results table. Each row: name + RMSE/MAE/NSE per
/// dataset block. `blocks` names dataset columns (e.g. {"HK", "BW"}).
void PrintResultsTable(const std::string& title,
                       const std::vector<std::string>& blocks,
                       const std::vector<std::vector<EvalResult>>& rows);

}  // namespace ssin

#endif  // SSIN_EVAL_RUNNER_H_
