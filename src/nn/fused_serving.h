#ifndef SSIN_NN_FUSED_SERVING_H_
#define SSIN_NN_FUSED_SERVING_H_

#include <cmath>
#include <cstdint>

#include "common/simd.h"

/// \file
/// Fused serving kernels for the graph-free Infer path.
///
/// The unfused serving chain materializes every intermediate — per-head
/// q/k/v projections, per-head attention outputs, the head concatenation,
/// the FFN hidden activation [L, d_ff] — in the InferenceWorkspace bump
/// arena, so at serving sizes the hot path is bandwidth-bound: each stage
/// streams a full [L, *] tensor out to memory and the next stage streams
/// it back in. The kernels here fuse the chain row-wise:
///
///   FusedQkvProjectRows        one pass over the input rows computes every
///                              head's q/k/v projection (one read of x per
///                              row instead of 3*H)
///   FusedAttentionEpilogueRows per row: concat · W^O (+bias) + residual,
///                              LayerNorm — the row never leaves L1 between
///                              the output projection and the norm
///   FusedFfnRows               per row: linear -> ReLU -> linear ->
///                              residual -> LayerNorm with the [d_ff]
///                              hidden activation in a reusable L1 tile
///                              instead of a full [L, d_ff] arena tensor
///
/// Bit-exactness contract: every kernel reproduces, per output element, the
/// exact arithmetic sequence of the unfused composition it replaces — the
/// inner row product is the same zero-then-Axpy4/Axpy sequence as
/// MatMulInto's blocked path (simd::MatMulAccRows), the residual adds
/// execute in the same operand order as Tensor::Accumulate / Ops::Add, and
/// the LayerNorm row body is simd::LayerNormRows verbatim. Only the
/// *interleaving across elements* changes, so for a given Ops policy the
/// fused chain is bit-identical to the unfused chain (the one exception is
/// the sign of exact-zero ReLU outputs: Ops::Relu may flip -0.0 to +0.0
/// where the historical f64 branch keeps -0.0 — value-equal under ==).
/// tests/kernel_differential_test.cc pins each kernel against the unfused
/// ScalarOps composition before any caller may use it.
///
/// Determinism: every output element is written by exactly one call in a
/// fixed order, and the kernels run inline on the serving thread — results
/// are independent of thread count by construction.

namespace ssin {
namespace fused {

/// One output row of a matmul: out_row[n] = x_row[k] · w[k,n], zeroing
/// out_row first. Per-element this is exactly MatMulInto's Fill(0) +
/// simd::MatMulAccRows inner sequence (Axpy4 over groups of four w rows,
/// Axpy remainder), so a fused caller matches the unfused tensor-level
/// matmul bit for bit under the same Ops policy.
template <typename T, typename Ops>
inline void MatVecRowInto(const T* x_row, const T* w, int k, int n,
                          T* out_row) {
  for (int j = 0; j < n; ++j) out_row[j] = T(0);
  int p = 0;
  for (; p + 4 <= k; p += 4) {
    const T* b0 = w + static_cast<int64_t>(p) * n;
    Ops::Axpy4(x_row[p], x_row[p + 1], x_row[p + 2], x_row[p + 3], b0,
               b0 + n, b0 + 2 * n, b0 + 3 * n, out_row, n);
  }
  for (; p < k; ++p) {
    Ops::Axpy(x_row[p], w + static_cast<int64_t>(p) * n, out_row, n);
  }
}

/// LayerNorm of one row; the row body of simd::LayerNormRows verbatim.
template <typename T, typename Ops>
inline void LayerNormRow(const T* x_row, const T* gamma, const T* beta,
                         T eps, int n, T* out_row) {
  const T mean = Ops::Sum(x_row, n) / static_cast<T>(n);
  const T var = Ops::SumSqDiff(x_row, mean, n) / static_cast<T>(n);
  const T istd = T(1) / std::sqrt(var + eps);
  Ops::NormScale(x_row, mean, istd, gamma, beta, out_row,
                 /*xhat=*/static_cast<T*>(nullptr), n);
}

/// Fused multi-head QKV projection: one pass over the `length` rows of
/// x [length, dm] computes, for every head h in [0, num_heads):
///
///   k_h[i]              = x_row_i · wk[h]   for all rows i
///   v_h[i]              = x_row_i · wv[h]   for all rows i
///   q_h[i - tail_begin] = x_row_i · wq[h]   for rows i >= tail_begin
///
/// wq/wk/wv are arrays of num_heads weight pointers, each [dm, d]
/// row-major. Outputs are head-major: kv is [2*num_heads, length, d] with
/// k_h at kv + (2h)*length*d and v_h at kv + (2h+1)*length*d; q is
/// [num_heads, length - tail_begin, d]. Keys/values span the full sequence
/// while queries cover only the tail (pass tail_begin = 0 for all rows) —
/// the serving tail optimization folded into the same pass.
template <typename T, typename Ops>
void FusedQkvProjectRows(const T* x, int length, int dm, int tail_begin,
                         const T* const* wq, const T* const* wk,
                         const T* const* wv, int num_heads, int d, T* q,
                         T* kv) {
  const int nq = length - tail_begin;
  for (int i = 0; i < length; ++i) {
    const T* x_row = x + static_cast<int64_t>(i) * dm;
    for (int h = 0; h < num_heads; ++h) {
      MatVecRowInto<T, Ops>(
          x_row, wk[h], dm, d,
          kv + (static_cast<int64_t>(2 * h) * length + i) * d);
      MatVecRowInto<T, Ops>(
          x_row, wv[h], dm, d,
          kv + (static_cast<int64_t>(2 * h + 1) * length + i) * d);
      if (i >= tail_begin) {
        MatVecRowInto<T, Ops>(
            x_row, wq[h], dm, d,
            q + (static_cast<int64_t>(h) * nq + (i - tail_begin)) * d);
      }
    }
  }
}

/// Fused attention epilogue: for each of the `rows` rows,
///
///   tmp      = concat_row[k] · wo[k,n] (+ wo_bias)
///   tmp     += residual_row            (the attention residual)
///   out_row  = LayerNorm(tmp; gamma, beta, eps)
///
/// in one pass, so the projected row goes straight from registers/L1 into
/// the norm instead of round-tripping a full [rows, n] arena tensor twice.
/// `residual` points at the rows the attention output pairs with — for a
/// tail evaluation pass x + tail_begin*n so row r pairs with sequence row
/// tail_begin + r. `tmp` is caller-provided scratch of n elements.
/// wo_bias may be null (the attention output projection has no bias).
template <typename T, typename Ops>
void FusedAttentionEpilogueRows(const T* concat, int rows, int k,
                                const T* wo, const T* wo_bias, int n,
                                const T* residual, const T* gamma,
                                const T* beta, T eps, T* tmp, T* out) {
  for (int i = 0; i < rows; ++i) {
    MatVecRowInto<T, Ops>(concat + static_cast<int64_t>(i) * k, wo, k, n,
                          tmp);
    if (wo_bias != nullptr) Ops::Add(wo_bias, tmp, n);
    Ops::Add(residual + static_cast<int64_t>(i) * n, tmp, n);
    LayerNormRow<T, Ops>(tmp, gamma, beta, eps, n,
                         out + static_cast<int64_t>(i) * n);
  }
}

/// Fused position-wise FFN sublayer: for each of the `rows` rows of
/// x [rows, d],
///
///   hidden   = x_row[d] · w1[d, d_ff] (+ b1), ReLU if `relu`
///   tmp      = hidden[d_ff] · w2[d_ff, d] (+ b2)
///   tmp     += x_row                   (the FFN residual)
///   out_row  = LayerNorm(tmp; gamma, beta, eps)
///
/// `hidden` (d_ff elements) and `tmp` (d elements) are caller-provided
/// scratch tiles reused across rows — the [rows, d_ff] hidden activation,
/// the dominant term of the unfused arena high-water mark, is never
/// materialized. b1/b2 may be null.
template <typename T, typename Ops>
void FusedFfnRows(const T* x, int rows, int d, int d_ff, const T* w1,
                  const T* b1, const T* w2, const T* b2, bool relu,
                  const T* gamma, const T* beta, T eps, T* hidden, T* tmp,
                  T* out) {
  for (int i = 0; i < rows; ++i) {
    const T* x_row = x + static_cast<int64_t>(i) * d;
    MatVecRowInto<T, Ops>(x_row, w1, d, d_ff, hidden);
    if (b1 != nullptr) Ops::Add(b1, hidden, d_ff);
    if (relu) Ops::Relu(hidden, d_ff);
    MatVecRowInto<T, Ops>(hidden, w2, d_ff, d, tmp);
    if (b2 != nullptr) Ops::Add(b2, tmp, d);
    Ops::Add(x_row, tmp, d);
    LayerNormRow<T, Ops>(tmp, gamma, beta, eps, d,
                         out + static_cast<int64_t>(i) * d);
  }
}

}  // namespace fused
}  // namespace ssin

#endif  // SSIN_NN_FUSED_SERVING_H_
