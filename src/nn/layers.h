#ifndef SSIN_NN_LAYERS_H_
#define SSIN_NN_LAYERS_H_

#include <string>

#include "nn/inference.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace ssin {

/// Fully connected layer: y = x W (+ b).
class Linear : public Module {
 public:
  /// When `bias` is false this is the "linear layer without bias" of the
  /// paper's embedding ablations (Table 6, emb:*-l variants).
  Linear(int in_features, int out_features, bool bias, Rng* rng);

  Var Forward(Var x);

  /// Graph-free forward into workspace storage. Runs the same kernels as
  /// Forward (MatMulInto + the AddRow arithmetic), so the result is
  /// numerically identical to Forward's value on the same input.
  Tensor& Infer(const Tensor& x, InferenceWorkspace* ws);

  /// Float32 serving forward: same kernel shapes as Infer, computed in
  /// single precision against the converted weights in `w` (a
  /// F32WeightCache snapshot of this module's parameters).
  TensorF32& InferF32(const TensorF32& x, const F32WeightCache::Map& w,
                      InferenceWorkspace* ws);

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

  /// Raw parameter access for the fused serving kernels, which read the
  /// weights directly instead of going through Infer. bias_param() is null
  /// for bias-free layers. The f32 chain uses the Parameter pointer as the
  /// F32WeightCache key, exactly like InferF32 does.
  const Parameter* weight_param() const { return weight_; }
  const Parameter* bias_param() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Parameter* weight_;
  Parameter* bias_ = nullptr;
};

/// Two-layer fully connected network with hidden size `hidden` and an
/// optional ReLU between the layers.
///
/// With relu=false and bias=true this is the embedding FCN of paper
/// Eq. (2)/(3)/(9); with relu=true it is the Transformer feed-forward
/// network of Eq. (8).
class Fcn2 : public Module {
 public:
  Fcn2(int in_features, int hidden, int out_features, bool relu, bool bias,
       Rng* rng);

  Var Forward(Var x);

  /// Graph-free forward; see Linear::Infer.
  Tensor& Infer(const Tensor& x, InferenceWorkspace* ws);

  /// Float32 serving forward; see Linear::InferF32.
  TensorF32& InferF32(const TensorF32& x, const F32WeightCache::Map& w,
                      InferenceWorkspace* ws);

  /// Sublayer access for the fused serving kernels.
  const Linear& first() const { return first_; }
  const Linear& second() const { return second_; }
  bool relu() const { return relu_; }

 private:
  Linear first_;
  Linear second_;
  bool relu_;
};

/// Layer normalization with learnable gain/bias over the last dimension.
class LayerNormLayer : public Module {
 public:
  explicit LayerNormLayer(int features, double eps = 1e-5);

  Var Forward(Var x);

  /// Graph-free forward; see Linear::Infer.
  Tensor& Infer(const Tensor& x, InferenceWorkspace* ws);

  /// Float32 serving forward; see Linear::InferF32.
  TensorF32& InferF32(const TensorF32& x, const F32WeightCache::Map& w,
                      InferenceWorkspace* ws);

  /// Raw parameter access for the fused serving kernels.
  const Parameter* gamma_param() const { return gamma_; }
  const Parameter* beta_param() const { return beta_; }
  double eps() const { return eps_; }

 private:
  Parameter* gamma_;
  Parameter* beta_;
  double eps_;
};

}  // namespace ssin

#endif  // SSIN_NN_LAYERS_H_
