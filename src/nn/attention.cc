#include "nn/attention.h"

#include <algorithm>
#include <string>

#include "nn/fused_serving.h"

namespace ssin {

MultiHeadSpaAttention::MultiHeadSpaAttention(int d_model, int num_heads,
                                             int d_k,
                                             const AttentionConfig& config,
                                             Rng* rng)
    : config_(config) {
  SSIN_CHECK_GE(num_heads, 1);
  heads_.resize(num_heads);
  for (int h = 0; h < num_heads; ++h) {
    heads_[h].wq = std::make_unique<Linear>(d_model, d_k, /*bias=*/false, rng);
    heads_[h].wk = std::make_unique<Linear>(d_model, d_k, /*bias=*/false, rng);
    heads_[h].wv = std::make_unique<Linear>(d_model, d_k, /*bias=*/false, rng);
    const std::string prefix = "head" + std::to_string(h);
    RegisterSubmodule(prefix + ".wq", heads_[h].wq.get());
    RegisterSubmodule(prefix + ".wk", heads_[h].wk.get());
    RegisterSubmodule(prefix + ".wv", heads_[h].wv.get());
  }
  output_proj_ =
      std::make_unique<Linear>(num_heads * d_k, d_model, /*bias=*/false, rng);
  RegisterSubmodule("wo", output_proj_.get());
}

Var MultiHeadSpaAttention::Forward(Var e, Var srpe,
                                   std::shared_ptr<const AttentionPlan> plan) {
  std::vector<Var> head_outputs;
  head_outputs.reserve(heads_.size());
  for (auto& head : heads_) {
    Var q = head.wq->Forward(e);
    Var k = head.wk->Forward(e);
    Var v = head.wv->Forward(e);
    head_outputs.push_back(SpaAttention(q, k, v, srpe, plan, config_));
  }
  Var concat = head_outputs.size() == 1 ? head_outputs[0]
                                        : ConcatCols(head_outputs);
  return output_proj_->Forward(concat);
}

Tensor& MultiHeadSpaAttention::Infer(const Tensor& e, const Tensor* srpe,
                                     const AttentionPlan& plan,
                                     InferenceWorkspace* ws) {
  const int length = e.dim(0);
  if (heads_.size() == 1) {
    auto& head = heads_[0];
    Tensor& q = head.wq->Infer(e, ws);
    Tensor& k = head.wk->Infer(e, ws);
    Tensor& v = head.wv->Infer(e, ws);
    Tensor* z = ws->Acquire({length, q.dim(1)});
    PackedAttentionForwardInto(q, k, v, srpe, plan, config_,
                               ws->attention_context(), z);
    return output_proj_->Infer(*z, ws);
  }
  Tensor* concat = ws->Acquire({length, output_proj_->in_features()});
  int col = 0;
  for (auto& head : heads_) {
    Tensor& q = head.wq->Infer(e, ws);
    Tensor& k = head.wk->Infer(e, ws);
    Tensor& v = head.wv->Infer(e, ws);
    const int d = q.dim(1);
    Tensor* z = ws->Acquire({length, d});
    PackedAttentionForwardInto(q, k, v, srpe, plan, config_,
                               ws->attention_context(), z);
    // Column-block copy into the concatenation, as ConcatCols does.
    const int total = concat->dim(1);
    for (int i = 0; i < length; ++i) {
      const double* src = z->data() + static_cast<int64_t>(i) * d;
      double* dst = concat->data() + static_cast<int64_t>(i) * total + col;
      for (int j = 0; j < d; ++j) dst[j] = src[j];
    }
    col += d;
  }
  return output_proj_->Infer(*concat, ws);
}

TensorF32& MultiHeadSpaAttention::InferF32(const TensorF32& e,
                                           const TensorF32* srpe,
                                           const AttentionPlan& plan,
                                           const F32WeightCache::Map& w,
                                           InferenceWorkspace* ws) {
  const int length = e.dim(0);
  const float* c = srpe != nullptr ? srpe->data() : nullptr;
  if (heads_.size() == 1) {
    auto& head = heads_[0];
    TensorF32& q = head.wq->InferF32(e, w, ws);
    TensorF32& k = head.wk->InferF32(e, w, ws);
    TensorF32& v = head.wv->InferF32(e, w, ws);
    TensorF32* z = ws->AcquireF32({length, q.dim(1)});
    PackedAttentionForwardRows<float, simd::VecOps>(
        q.data(), k.data(), v.data(), c, plan, config_.packed_srpe, q.dim(1),
        /*tail_begin=*/0, ws->f32_scores(), /*alpha_out=*/nullptr, z->data());
    return output_proj_->InferF32(*z, w, ws);
  }
  TensorF32* concat = ws->AcquireF32({length, output_proj_->in_features()});
  int col = 0;
  for (auto& head : heads_) {
    TensorF32& q = head.wq->InferF32(e, w, ws);
    TensorF32& k = head.wk->InferF32(e, w, ws);
    TensorF32& v = head.wv->InferF32(e, w, ws);
    const int d = q.dim(1);
    TensorF32* z = ws->AcquireF32({length, d});
    PackedAttentionForwardRows<float, simd::VecOps>(
        q.data(), k.data(), v.data(), c, plan, config_.packed_srpe, d,
        /*tail_begin=*/0, ws->f32_scores(), /*alpha_out=*/nullptr, z->data());
    const int total = concat->dim(1);
    for (int i = 0; i < length; ++i) {
      const float* src = z->data() + static_cast<int64_t>(i) * d;
      float* dst = concat->data() + static_cast<int64_t>(i) * total + col;
      for (int j = 0; j < d; ++j) dst[j] = src[j];
    }
    col += d;
  }
  return output_proj_->InferF32(*concat, w, ws);
}

void MultiHeadSpaAttention::InferConcatFused(const Tensor& e,
                                             const Tensor* srpe,
                                             const AttentionPlan& plan,
                                             int tail_begin,
                                             InferenceWorkspace* ws,
                                             Tensor* concat) {
  const int length = e.dim(0);
  const int dm = e.dim(1);
  const int H = num_heads();
  const int d = head_dim();
  const int nq = length - tail_begin;
  // Head-major projection arenas: q [H, nq, d]; kv [2H, L, d] with k_h at
  // block 2h and v_h at block 2h+1. Two slots replace the 3H per-head
  // tensors of the unfused chain.
  Tensor* q = ws->Acquire({H * nq, d});
  Tensor* kv = ws->Acquire({2 * H * length, d});
  std::vector<const double*>* wp = ws->weight_ptrs();
  wp->resize(3 * static_cast<size_t>(H));
  const double** wq = wp->data();
  const double** wk = wq + H;
  const double** wv = wk + H;
  for (int h = 0; h < H; ++h) {
    wq[h] = heads_[h].wq->weight_param()->value.data();
    wk[h] = heads_[h].wk->weight_param()->value.data();
    wv[h] = heads_[h].wv->weight_param()->value.data();
  }
  fused::FusedQkvProjectRows<double, simd::VecOps>(
      e.data(), length, dm, tail_begin, wq, wk, wv, H, d, q->data(),
      kv->data());
  const double* c = srpe != nullptr ? srpe->data() : nullptr;
  std::vector<double>* scores = &ws->attention_context()->scores;
  for (int h = 0; h < H; ++h) {
    PackedAttentionForwardRowsStrided<double, simd::VecOps>(
        q->data() + static_cast<int64_t>(h) * nq * d,
        kv->data() + static_cast<int64_t>(2 * h) * length * d,
        kv->data() + static_cast<int64_t>(2 * h + 1) * length * d, c, plan,
        config_.packed_srpe, d, tail_begin, scores, /*alpha_out=*/nullptr,
        concat->data() + static_cast<int64_t>(h) * d,
        /*z_stride=*/static_cast<int64_t>(H) * d);
  }
}

void MultiHeadSpaAttention::InferConcatFusedF32(const TensorF32& e,
                                                const TensorF32* srpe,
                                                const AttentionPlan& plan,
                                                int tail_begin,
                                                const F32WeightCache::Map& w,
                                                InferenceWorkspace* ws,
                                                TensorF32* concat) {
  const int length = e.dim(0);
  const int dm = e.dim(1);
  const int H = num_heads();
  const int d = head_dim();
  const int nq = length - tail_begin;
  TensorF32* q = ws->AcquireF32({H * nq, d});
  TensorF32* kv = ws->AcquireF32({2 * H * length, d});
  std::vector<const float*>* wp = ws->weight_ptrs_f32();
  wp->resize(3 * static_cast<size_t>(H));
  const float** wq = wp->data();
  const float** wk = wq + H;
  const float** wv = wk + H;
  for (int h = 0; h < H; ++h) {
    wq[h] = w.at(heads_[h].wq->weight_param()).data();
    wk[h] = w.at(heads_[h].wk->weight_param()).data();
    wv[h] = w.at(heads_[h].wv->weight_param()).data();
  }
  fused::FusedQkvProjectRows<float, simd::VecOps>(
      e.data(), length, dm, tail_begin, wq, wk, wv, H, d, q->data(),
      kv->data());
  const float* c = srpe != nullptr ? srpe->data() : nullptr;
  for (int h = 0; h < H; ++h) {
    PackedAttentionForwardRowsStrided<float, simd::VecOps>(
        q->data() + static_cast<int64_t>(h) * nq * d,
        kv->data() + static_cast<int64_t>(2 * h) * length * d,
        kv->data() + static_cast<int64_t>(2 * h + 1) * length * d, c, plan,
        config_.packed_srpe, d, tail_begin, ws->f32_scores(),
        /*alpha_out=*/nullptr,
        concat->data() + static_cast<int64_t>(h) * d,
        /*z_stride=*/static_cast<int64_t>(H) * d);
  }
}

Tensor& MultiHeadSpaAttention::InferTail(const Tensor& e, const Tensor* srpe,
                                         const AttentionPlan& plan,
                                         int tail_begin,
                                         InferenceWorkspace* ws) {
  const int length = e.dim(0);
  const int num_queries = length - tail_begin;
  // Query rows are contiguous at the end of the sequence; project q from
  // a row-window copy so each head's wq matmul runs on num_queries rows.
  Tensor* e_tail = ws->Acquire({num_queries, e.dim(1)});
  std::copy(e.data() + static_cast<int64_t>(tail_begin) * e.dim(1),
            e.data() + static_cast<int64_t>(length) * e.dim(1),
            e_tail->data());
  if (heads_.size() == 1) {
    auto& head = heads_[0];
    Tensor& q = head.wq->Infer(*e_tail, ws);
    Tensor& k = head.wk->Infer(e, ws);
    Tensor& v = head.wv->Infer(e, ws);
    Tensor* z = ws->Acquire({num_queries, q.dim(1)});
    PackedAttentionTailForwardInto(q, k, v, srpe, plan, tail_begin, config_,
                                   ws->attention_context(), z);
    return output_proj_->Infer(*z, ws);
  }
  Tensor* concat = ws->Acquire({num_queries, output_proj_->in_features()});
  int col = 0;
  for (auto& head : heads_) {
    Tensor& q = head.wq->Infer(*e_tail, ws);
    Tensor& k = head.wk->Infer(e, ws);
    Tensor& v = head.wv->Infer(e, ws);
    const int d = q.dim(1);
    Tensor* z = ws->Acquire({num_queries, d});
    PackedAttentionTailForwardInto(q, k, v, srpe, plan, tail_begin, config_,
                                   ws->attention_context(), z);
    const int total = concat->dim(1);
    for (int i = 0; i < num_queries; ++i) {
      const double* src = z->data() + static_cast<int64_t>(i) * d;
      double* dst = concat->data() + static_cast<int64_t>(i) * total + col;
      for (int j = 0; j < d; ++j) dst[j] = src[j];
    }
    col += d;
  }
  return output_proj_->Infer(*concat, ws);
}

TensorF32& MultiHeadSpaAttention::InferTailF32(const TensorF32& e,
                                               const TensorF32* srpe,
                                               const AttentionPlan& plan,
                                               int tail_begin,
                                               const F32WeightCache::Map& w,
                                               InferenceWorkspace* ws) {
  const int length = e.dim(0);
  const int num_queries = length - tail_begin;
  const float* c = srpe != nullptr ? srpe->data() : nullptr;
  TensorF32* e_tail = ws->AcquireF32({num_queries, e.dim(1)});
  std::copy(e.data() + static_cast<int64_t>(tail_begin) * e.dim(1),
            e.data() + static_cast<int64_t>(length) * e.dim(1),
            e_tail->data());
  if (heads_.size() == 1) {
    auto& head = heads_[0];
    TensorF32& q = head.wq->InferF32(*e_tail, w, ws);
    TensorF32& k = head.wk->InferF32(e, w, ws);
    TensorF32& v = head.wv->InferF32(e, w, ws);
    TensorF32* z = ws->AcquireF32({num_queries, q.dim(1)});
    PackedAttentionForwardRows<float, simd::VecOps>(
        q.data(), k.data(), v.data(), c, plan, config_.packed_srpe, q.dim(1),
        tail_begin, ws->f32_scores(), /*alpha_out=*/nullptr, z->data());
    return output_proj_->InferF32(*z, w, ws);
  }
  TensorF32* concat =
      ws->AcquireF32({num_queries, output_proj_->in_features()});
  int col = 0;
  for (auto& head : heads_) {
    TensorF32& q = head.wq->InferF32(*e_tail, w, ws);
    TensorF32& k = head.wk->InferF32(e, w, ws);
    TensorF32& v = head.wv->InferF32(e, w, ws);
    const int d = q.dim(1);
    TensorF32* z = ws->AcquireF32({num_queries, d});
    PackedAttentionForwardRows<float, simd::VecOps>(
        q.data(), k.data(), v.data(), c, plan, config_.packed_srpe, d,
        tail_begin, ws->f32_scores(), /*alpha_out=*/nullptr, z->data());
    const int total = concat->dim(1);
    for (int i = 0; i < num_queries; ++i) {
      const float* src = z->data() + static_cast<int64_t>(i) * d;
      float* dst = concat->data() + static_cast<int64_t>(i) * total + col;
      for (int j = 0; j < d; ++j) dst[j] = src[j];
    }
    col += d;
  }
  return output_proj_->InferF32(*concat, w, ws);
}

}  // namespace ssin
