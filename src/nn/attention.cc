#include "nn/attention.h"

#include <string>

namespace ssin {

MultiHeadSpaAttention::MultiHeadSpaAttention(int d_model, int num_heads,
                                             int d_k,
                                             const AttentionConfig& config,
                                             Rng* rng)
    : config_(config) {
  SSIN_CHECK_GE(num_heads, 1);
  heads_.resize(num_heads);
  for (int h = 0; h < num_heads; ++h) {
    heads_[h].wq = std::make_unique<Linear>(d_model, d_k, /*bias=*/false, rng);
    heads_[h].wk = std::make_unique<Linear>(d_model, d_k, /*bias=*/false, rng);
    heads_[h].wv = std::make_unique<Linear>(d_model, d_k, /*bias=*/false, rng);
    const std::string prefix = "head" + std::to_string(h);
    RegisterSubmodule(prefix + ".wq", heads_[h].wq.get());
    RegisterSubmodule(prefix + ".wk", heads_[h].wk.get());
    RegisterSubmodule(prefix + ".wv", heads_[h].wv.get());
  }
  output_proj_ =
      std::make_unique<Linear>(num_heads * d_k, d_model, /*bias=*/false, rng);
  RegisterSubmodule("wo", output_proj_.get());
}

Var MultiHeadSpaAttention::Forward(Var e, Var srpe,
                                   std::shared_ptr<const AttentionPlan> plan) {
  std::vector<Var> head_outputs;
  head_outputs.reserve(heads_.size());
  for (auto& head : heads_) {
    Var q = head.wq->Forward(e);
    Var k = head.wk->Forward(e);
    Var v = head.wv->Forward(e);
    head_outputs.push_back(SpaAttention(q, k, v, srpe, plan, config_));
  }
  Var concat = head_outputs.size() == 1 ? head_outputs[0]
                                        : ConcatCols(head_outputs);
  return output_proj_->Forward(concat);
}

}  // namespace ssin
