#ifndef SSIN_NN_MODULE_H_
#define SSIN_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/graph.h"
#include "tensor/tensor.h"

namespace ssin {

/// A trainable tensor with its gradient accumulator.
///
/// Parameters live outside any autograd Graph. A forward pass binds them in
/// with Parameter::Bind(), which creates a graph leaf whose backward
/// accumulates into `grad`; an optimizer then consumes `grad` and zeroes it.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  /// Creates a differentiable leaf for this parameter on `graph`.
  Var Bind(Graph* graph) { return graph->Leaf(value, &grad); }

  int64_t numel() const { return value.numel(); }
};

/// Base class for trainable components. Owns its parameters and knows its
/// submodules, so Parameters() can walk the whole tree (used by optimizers
/// and (de)serialization). Modules are neither copyable nor movable —
/// submodule registration stores stable pointers.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its registered submodules, in
  /// registration order (a deterministic, architecture-defined order).
  std::vector<Parameter*> Parameters();

  /// Total number of scalar parameters (the paper's #Param column).
  int64_t ParameterCount();

  /// Sets every gradient accumulator to zero.
  void ZeroGrad();

 protected:
  /// Creates and owns a parameter. `name` should be unique within the
  /// module; full names are path-qualified by Parameters().
  Parameter* RegisterParameter(const std::string& name, Tensor init);

  /// Registers a child; the child must outlive this module (typically a
  /// data member).
  void RegisterSubmodule(const std::string& name, Module* child);

 private:
  void CollectParameters(const std::string& prefix,
                         std::vector<Parameter*>* out);

  std::vector<std::unique_ptr<Parameter>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

/// Xavier/Glorot uniform initialization for a [fan_in, fan_out] weight.
Tensor GlorotUniform(int fan_in, int fan_out, Rng* rng);

}  // namespace ssin

#endif  // SSIN_NN_MODULE_H_
