#ifndef SSIN_NN_ATTENTION_H_
#define SSIN_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/attention_kernels.h"
#include "tensor/ops.h"

namespace ssin {

/// Multi-head shielded self-attention with spatial relative position
/// embeddings (paper §3.3.3, Eq. 4-7).
///
/// Each head h computes z^(h) via the packed shielded-attention kernel from
/// its own Q/K/V projections (all without bias, as in the original
/// Transformer); head outputs are concatenated and projected by W^O back to
/// the model dimension.
class MultiHeadSpaAttention : public Module {
 public:
  /// d_model: input embedding dimension d_e. d_k: per-head dimension.
  /// The SRPE tensor passed to Forward must have column width d_k.
  MultiHeadSpaAttention(int d_model, int num_heads, int d_k,
                        const AttentionConfig& config, Rng* rng);

  /// e: [L, d_model] node embeddings. srpe: relative position embeddings
  /// shared by all heads — packed [num_pairs, d_k] when the config has
  /// packed_srpe, dense [L*L, d_k] otherwise (pass an invalid Var when
  /// use_srpe=false). plan: the sequence's legal-pair plan, built once
  /// upstream (SpaFormer::Forward) and shared by every layer and head.
  Var Forward(Var e, Var srpe, std::shared_ptr<const AttentionPlan> plan);

  /// Graph-free forward: same projections and the same packed attention
  /// kernel as Forward, evaluated into workspace storage. `srpe` may be
  /// null when the config has use_srpe=false.
  Tensor& Infer(const Tensor& e, const Tensor* srpe,
                const AttentionPlan& plan, InferenceWorkspace* ws);

  /// Attention outputs for the trailing queries [tail_begin, L) only,
  /// [L-tail_begin, d_model]. Keys/values still span all of `e`, so row r
  /// is bit-identical to row tail_begin+r of Infer; the query projection
  /// and per-query work of the leading rows are skipped.
  Tensor& InferTail(const Tensor& e, const Tensor* srpe,
                    const AttentionPlan& plan, int tail_begin,
                    InferenceWorkspace* ws);

  /// Float32 serving forwards, structurally identical to Infer/InferTail
  /// with projections from the converted weight snapshot `w` and the f32
  /// attention kernel (the softmax weights are not recorded — serving
  /// never reads them back).
  TensorF32& InferF32(const TensorF32& e, const TensorF32* srpe,
                      const AttentionPlan& plan, const F32WeightCache::Map& w,
                      InferenceWorkspace* ws);
  TensorF32& InferTailF32(const TensorF32& e, const TensorF32* srpe,
                          const AttentionPlan& plan, int tail_begin,
                          const F32WeightCache::Map& w,
                          InferenceWorkspace* ws);

  /// Fused serving forward up to (and excluding) the output projection:
  /// fills `concat` [L - tail_begin, num_heads*d_k] with every head's
  /// attention output in its column block. All head q/k/v projections run
  /// in one pass over e's rows (FusedQkvProjectRows), and each head's
  /// packed attention writes its concat columns directly via the strided
  /// kernel — no per-head z tensors, no column copy. Row r corresponds to
  /// query tail_begin + r (pass 0 for the full sequence); keys/values span
  /// all of e either way, so every element matches Infer/InferTail exactly.
  /// The caller (EncoderLayer::InferFused) finishes the sublayer with the
  /// fused epilogue (output projection + residual + LayerNorm).
  void InferConcatFused(const Tensor& e, const Tensor* srpe,
                        const AttentionPlan& plan, int tail_begin,
                        InferenceWorkspace* ws, Tensor* concat);
  void InferConcatFusedF32(const TensorF32& e, const TensorF32* srpe,
                           const AttentionPlan& plan, int tail_begin,
                           const F32WeightCache::Map& w,
                           InferenceWorkspace* ws, TensorF32* concat);

  const AttentionConfig& config() const { return config_; }
  int num_heads() const { return static_cast<int>(heads_.size()); }
  int head_dim() const { return heads_[0].wq->out_features(); }
  const Linear& output_proj() const { return *output_proj_; }

 private:
  struct Head {
    std::unique_ptr<Linear> wq;
    std::unique_ptr<Linear> wk;
    std::unique_ptr<Linear> wv;
  };

  AttentionConfig config_;
  std::vector<Head> heads_;
  std::unique_ptr<Linear> output_proj_;
};

}  // namespace ssin

#endif  // SSIN_NN_ATTENTION_H_
