#ifndef SSIN_NN_SERIALIZE_H_
#define SSIN_NN_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"

namespace ssin {

/// Binary (de)serialization for model parameters and full training state.
///
/// Both file kinds share one crash-safe container:
///
///   [magic u64] [payload_size u64] [crc32 u32] [payload bytes]
///
/// * Writes build the payload in memory, write it to a `<path>.tmp.<pid>`
///   sibling, fsync it, and atomically rename() it over `path` (then fsync
///   the directory), so a crash mid-save can never leave a torn file under
///   the checkpoint name.
/// * Loads read the whole file first and require the payload size to match
///   the file exactly and the CRC-32 to match the payload, so truncations
///   and byte flips are detected before any state is touched.
/// * The payload parser bounds-checks every length field (name lengths,
///   tensor ranks, dimensions) against hard limits and the remaining
///   payload, so even a CRC-valid hostile file cannot trigger huge
///   allocations or negative tensor dimensions.
/// * Appliers validate *everything* against the target before mutating it:
///   a failed load leaves the module/trainer exactly as it was.

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a byte range. Exposed so
/// tests can craft and corrupt files deliberately.
uint32_t Crc32(const void* data, size_t len);

/// Writes `bytes` to `path` via the temp-file + fsync + rename protocol
/// above. Returns false on any IO failure (the target is left untouched).
bool AtomicWriteFile(const std::string& path, const std::string& bytes);

/// Saves all parameters of `module` to a binary checkpoint ("SSINMOD2"
/// container). Records are (path-qualified name, shape, doubles) in
/// Module::Parameters() order. Returns false on IO failure.
bool SaveModule(Module* module, const std::string& path);

/// Restores parameter values by name. Every parameter of `module` must be
/// present in the checkpoint with an identical shape; extra records,
/// duplicate names, or any corruption are errors. All-or-nothing: on any
/// failure the module's parameters are left untouched. Returns false on IO
/// failure, corruption, or any mismatch.
bool LoadModule(Module* module, const std::string& path);

/// Complete training state for crash-safe checkpoint/resume ("SSINCKP1"
/// container): model parameters plus Adam moments/step, the Noam schedule,
/// the trainer's RNG engine, and the epoch/shuffle cursor. Produced and
/// consumed by SsinTrainer::SaveCheckpoint / ResumeFrom; the raw struct and
/// functions are exposed for tests and tooling.
struct TrainingCheckpoint {
  /// (name, value) per parameter, in Module::Parameters() order.
  std::vector<std::pair<std::string, Tensor>> params;

  /// Adam state: step count and first/second moments, parallel to `params`
  /// (shapes must match; the loader rejects mismatches).
  int64_t adam_step = 0;
  std::vector<Tensor> adam_m;
  std::vector<Tensor> adam_v;

  /// Noam schedule state; absent when training never created one.
  bool has_schedule = false;
  double schedule_scale = 0.0;  ///< factor / sqrt(d_model).
  int schedule_warmup = 0;
  int64_t schedule_step = 0;

  /// std::mt19937_64 stream-operator text of the trainer's RNG.
  std::string rng_state;

  /// Epoch cursor: epochs completed in the interrupted run, and the item
  /// permutation as of the end of that epoch (the next epoch shuffles it).
  int64_t epochs_completed = 0;
  std::vector<int> item_order;

  /// Static-masking ablation only: the run's pre-drawn masks (empty for
  /// dynamic masking).
  std::vector<std::vector<int>> static_masks;
};

/// Writes a training checkpoint with the atomic protocol. Returns false on
/// IO failure.
bool SaveTrainingCheckpoint(const TrainingCheckpoint& checkpoint,
                            const std::string& path);

/// Reads and validates a training checkpoint. Beyond the container checks,
/// requires Adam moments to match the parameter shapes, `item_order` to be
/// a permutation of its length, and all counts to be plausible. Returns
/// false (leaving *checkpoint unspecified) on any problem.
bool LoadTrainingCheckpoint(TrainingCheckpoint* checkpoint,
                            const std::string& path);

}  // namespace ssin

#endif  // SSIN_NN_SERIALIZE_H_
