#ifndef SSIN_NN_SERIALIZE_H_
#define SSIN_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"

namespace ssin {

/// Saves all parameters of `module` to a binary checkpoint. The format is a
/// little-endian stream of (name, shape, doubles) records with a magic
/// header; names are the path-qualified names from Module::Parameters().
/// Returns false on IO failure.
bool SaveModule(Module* module, const std::string& path);

/// Restores parameter values by name. Every parameter of `module` must be
/// present in the checkpoint with an identical shape; extra records in the
/// file are an error too (checkpoints are exact snapshots). Returns false
/// on IO failure or any mismatch.
bool LoadModule(Module* module, const std::string& path);

}  // namespace ssin

#endif  // SSIN_NN_SERIALIZE_H_
