#include "nn/inference.h"

namespace ssin {

Tensor* InferenceWorkspace::Acquire(const std::vector<int>& shape) {
  if (cursor_ == slots_.size()) {
    slots_.push_back(std::make_unique<Tensor>(shape));
  }
  Tensor* t = slots_[cursor_++].get();
  if (t->shape() != shape) *t = Tensor(shape);
  return t;
}

}  // namespace ssin
