#include "nn/inference.h"

#include "nn/module.h"

namespace ssin {

size_t InferenceWorkspace::ArenaBytes() const {
  size_t bytes = 0;
  for (const auto& slot : slots_) {
    bytes += static_cast<size_t>(slot->numel()) * sizeof(double);
  }
  for (const auto& slot : f32_slots_) {
    bytes += static_cast<size_t>(slot->numel()) * sizeof(float);
  }
  bytes += scratch_f64_.size() * sizeof(double);
  bytes += scratch_f32_.size() * sizeof(float);
  return bytes;
}

double* InferenceWorkspace::ScratchF64(size_t n) {
  if (scratch_f64_.size() < n) scratch_f64_.resize(n);
  return scratch_f64_.data();
}

float* InferenceWorkspace::ScratchF32(size_t n) {
  if (scratch_f32_.size() < n) scratch_f32_.resize(n);
  return scratch_f32_.data();
}

Tensor* InferenceWorkspace::Acquire(const std::vector<int>& shape) {
  if (cursor_ == slots_.size()) {
    slots_.push_back(std::make_unique<Tensor>(shape));
  }
  Tensor* t = slots_[cursor_++].get();
  if (t->shape() != shape) *t = Tensor(shape);
  return t;
}

TensorF32* InferenceWorkspace::AcquireF32(const std::vector<int>& shape) {
  if (f32_cursor_ == f32_slots_.size()) {
    f32_slots_.push_back(std::make_unique<TensorF32>(shape));
  }
  TensorF32* t = f32_slots_[f32_cursor_++].get();
  if (t->shape() != shape) *t = TensorF32(shape);
  return t;
}

std::shared_ptr<const F32WeightCache::Map> F32WeightCache::EnsureFrom(
    Module* module) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (snapshot_ != nullptr) return snapshot_;
  }
  // Convert outside the lock — parameters are stable while serving — then
  // publish; if two threads race, the second build wins and both maps hold
  // identical values.
  auto map = std::make_shared<Map>();
  for (Parameter* p : module->Parameters()) {
    map->emplace(p, TensorF32::FromTensor(p->value));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (snapshot_ == nullptr) {
    snapshot_ = std::move(map);
    conversions_.fetch_add(1, std::memory_order_relaxed);
  }
  return snapshot_;
}

void F32WeightCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  snapshot_.reset();
}

bool F32WeightCache::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_ == nullptr;
}

}  // namespace ssin
