#include "nn/inference.h"

namespace ssin {

size_t InferenceWorkspace::ArenaBytes() const {
  size_t bytes = 0;
  for (const auto& slot : slots_) {
    bytes += static_cast<size_t>(slot->numel()) * sizeof(double);
  }
  return bytes;
}

Tensor* InferenceWorkspace::Acquire(const std::vector<int>& shape) {
  if (cursor_ == slots_.size()) {
    slots_.push_back(std::make_unique<Tensor>(shape));
  }
  Tensor* t = slots_[cursor_++].get();
  if (t->shape() != shape) *t = Tensor(shape);
  return t;
}

}  // namespace ssin
