#include "nn/module.h"

#include <cmath>

namespace ssin {

std::vector<Parameter*> Module::Parameters() {
  std::vector<Parameter*> out;
  CollectParameters("", &out);
  return out;
}

void Module::CollectParameters(const std::string& prefix,
                               std::vector<Parameter*>* out) {
  for (auto& p : params_) {
    // Refresh the fully qualified name so save/load sees stable paths even
    // when a module is reused inside different parents.
    if (!prefix.empty() && p->name.rfind(prefix, 0) != 0) {
      p->name = prefix + p->name;
    }
    out->push_back(p.get());
  }
  for (auto& [name, child] : children_) {
    child->CollectParameters(prefix + name + ".", out);
  }
}

int64_t Module::ParameterCount() {
  int64_t total = 0;
  for (Parameter* p : Parameters()) total += p->numel();
  return total;
}

void Module::ZeroGrad() {
  for (Parameter* p : Parameters()) p->grad.Fill(0.0);
}

Parameter* Module::RegisterParameter(const std::string& name, Tensor init) {
  params_.push_back(std::make_unique<Parameter>(name, std::move(init)));
  return params_.back().get();
}

void Module::RegisterSubmodule(const std::string& name, Module* child) {
  SSIN_CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

Tensor GlorotUniform(int fan_in, int fan_out, Rng* rng) {
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  return Tensor::RandUniform({fan_in, fan_out}, rng, -limit, limit);
}

}  // namespace ssin
