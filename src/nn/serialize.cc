#include "nn/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

namespace ssin {

namespace {

constexpr uint64_t kModuleMagic = 0x5353494e4d4f4432ull;      // "SSINMOD2"
constexpr uint64_t kCheckpointMagic = 0x5353494e434b5031ull;  // "SSINCKP1"

// Header: magic + payload_size + crc32.
constexpr size_t kHeaderBytes = 8 + 8 + 4;

// Hard plausibility limits for length fields read from a file. Every real
// value in this codebase is orders of magnitude below these; anything
// larger is corruption or an attack, not a checkpoint.
constexpr uint64_t kMaxNameLen = 4096;
constexpr uint64_t kMaxRank = 8;
constexpr uint64_t kMaxDim = 0x7fffffffull;        // Tensor dims are int.
constexpr uint64_t kMaxStringLen = 1 << 20;        // RNG state is ~7 KB.

// ------------------------------------------------------------- payload IO

/// Append-only little-endian payload builder.
class PayloadWriter {
 public:
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void I64(int64_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) { Bytes(&v, sizeof(v)); }

  void String(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }

  void TensorData(const Tensor& t) {
    U64(static_cast<uint64_t>(t.rank()));
    for (int d : t.shape()) U64(static_cast<uint64_t>(d));
    Bytes(t.data(), static_cast<size_t>(t.numel()) * sizeof(double));
  }

  const std::string& bytes() const { return out_; }

 private:
  void Bytes(const void* p, size_t n) {
    out_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string out_;
};

/// Bounds-checked reader over an in-memory payload. Every accessor returns
/// false instead of reading past the end, and every length field is checked
/// against both the hard limits above and the bytes actually remaining, so
/// a corrupt file can neither over-allocate nor overflow a cast.
class PayloadReader {
 public:
  PayloadReader(const char* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  bool U64(uint64_t* v) { return Bytes(v, sizeof(*v)); }

  bool I64(int64_t* v) { return Bytes(v, sizeof(*v)); }

  bool F64(double* v) { return Bytes(v, sizeof(*v)); }

  bool String(std::string* s, uint64_t max_len) {
    uint64_t len = 0;
    if (!U64(&len)) return false;
    if (len > max_len || len > remaining()) return false;
    s->assign(data_ + pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return true;
  }

  bool TensorData(Tensor* t) {
    uint64_t rank = 0;
    if (!U64(&rank) || rank > kMaxRank) return false;
    std::vector<int> shape(static_cast<size_t>(rank));
    uint64_t numel = 1;
    for (uint64_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!U64(&dim) || dim > kMaxDim) return false;
      shape[d] = static_cast<int>(dim);
      // numel <= 2^63 is guaranteed by the per-dim cap only for rank 1;
      // re-check the running product against what the payload can hold.
      if (dim != 0 && numel > remaining() / dim) return false;
      numel *= dim;
    }
    if (numel * sizeof(double) > remaining()) return false;
    Tensor out(shape);
    if (!Bytes(out.data(), static_cast<size_t>(numel) * sizeof(double))) {
      return false;
    }
    *t = std::move(out);
    return true;
  }

 private:
  bool Bytes(void* p, size_t n) {
    if (n > remaining()) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// ----------------------------------------------------------- container IO

bool WriteContainer(uint64_t magic, const std::string& payload,
                    const std::string& path) {
  std::string file;
  file.reserve(kHeaderBytes + payload.size());
  const uint64_t size = payload.size();
  const uint32_t crc = Crc32(payload.data(), payload.size());
  file.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  file.append(reinterpret_cast<const char*>(&size), sizeof(size));
  file.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  file.append(payload);
  return AtomicWriteFile(path, file);
}

/// Reads `path`, verifies magic, exact payload size and CRC, and leaves the
/// payload in *payload. Any mismatch — wrong magic, truncation, trailing
/// garbage, flipped bytes — returns false.
bool ReadContainer(uint64_t expected_magic, const std::string& path,
                   std::string* payload) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return false;
  if (file.size() < kHeaderBytes) return false;

  uint64_t magic = 0, size = 0;
  uint32_t crc = 0;
  std::memcpy(&magic, file.data(), sizeof(magic));
  std::memcpy(&size, file.data() + 8, sizeof(size));
  std::memcpy(&crc, file.data() + 16, sizeof(crc));
  if (magic != expected_magic) return false;
  if (size != file.size() - kHeaderBytes) return false;
  if (crc != Crc32(file.data() + kHeaderBytes, size)) return false;
  payload->assign(file, kHeaderBytes, std::string::npos);
  return true;
}

// ------------------------------------------------------- parameter records

void WriteParamRecords(
    const std::vector<std::pair<std::string, Tensor>>& params,
    PayloadWriter* w) {
  w->U64(params.size());
  for (const auto& [name, value] : params) {
    w->String(name);
    w->TensorData(value);
  }
}

bool ReadParamRecords(PayloadReader* r,
                      std::vector<std::pair<std::string, Tensor>>* params) {
  uint64_t count = 0;
  // A record is at least 16 bytes (name length + rank), which bounds any
  // plausible count by the remaining payload — reserve only after that.
  if (!r->U64(&count) || count > r->remaining() / 16) return false;
  params->clear();
  params->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    Tensor value;
    if (!r->String(&name, kMaxNameLen)) return false;
    if (!r->TensorData(&value)) return false;
    params->emplace_back(std::move(name), std::move(value));
  }
  return true;
}

}  // namespace

// ------------------------------------------------------------------ CRC32

uint32_t Crc32(const void* data, size_t len) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ----------------------------------------------------------- atomic write

bool AtomicWriteFile(const std::string& path, const std::string& bytes) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n <= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Persist the rename itself: fsync the containing directory.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

// ----------------------------------------------------------- module files

bool SaveModule(Module* module, const std::string& path) {
  std::vector<std::pair<std::string, Tensor>> params;
  for (Parameter* p : module->Parameters()) {
    params.emplace_back(p->name, p->value);
  }
  PayloadWriter w;
  WriteParamRecords(params, &w);
  return WriteContainer(kModuleMagic, w.bytes(), path);
}

bool LoadModule(Module* module, const std::string& path) {
  std::string payload;
  if (!ReadContainer(kModuleMagic, path, &payload)) return false;
  PayloadReader r(payload.data(), payload.size());
  std::vector<std::pair<std::string, Tensor>> loaded;
  if (!ReadParamRecords(&r, &loaded) || !r.AtEnd()) return false;

  std::map<std::string, Tensor*> records;
  for (auto& [name, value] : loaded) {
    if (!records.emplace(name, &value).second) return false;  // Duplicate.
  }

  // Validate every record against the module first, then commit: a failed
  // load must never leave the module half-overwritten.
  std::vector<Parameter*> params = module->Parameters();
  if (params.size() != records.size()) return false;
  for (Parameter* p : params) {
    auto it = records.find(p->name);
    if (it == records.end()) return false;
    if (!it->second->SameShape(p->value)) return false;
  }
  for (Parameter* p : params) {
    p->value = std::move(*records.find(p->name)->second);
  }
  return true;
}

// ------------------------------------------------------- checkpoint files

bool SaveTrainingCheckpoint(const TrainingCheckpoint& checkpoint,
                            const std::string& path) {
  PayloadWriter w;
  WriteParamRecords(checkpoint.params, &w);

  w.I64(checkpoint.adam_step);
  for (const Tensor& m : checkpoint.adam_m) w.TensorData(m);
  for (const Tensor& v : checkpoint.adam_v) w.TensorData(v);

  w.U64(checkpoint.has_schedule ? 1 : 0);
  if (checkpoint.has_schedule) {
    w.F64(checkpoint.schedule_scale);
    w.U64(static_cast<uint64_t>(checkpoint.schedule_warmup));
    w.I64(checkpoint.schedule_step);
  }

  w.String(checkpoint.rng_state);

  w.I64(checkpoint.epochs_completed);
  w.U64(checkpoint.item_order.size());
  for (int i : checkpoint.item_order) w.U64(static_cast<uint64_t>(i));
  w.U64(checkpoint.static_masks.size());
  for (const std::vector<int>& mask : checkpoint.static_masks) {
    w.U64(mask.size());
    for (int i : mask) w.U64(static_cast<uint64_t>(i));
  }
  return WriteContainer(kCheckpointMagic, w.bytes(), path);
}

bool LoadTrainingCheckpoint(TrainingCheckpoint* checkpoint,
                            const std::string& path) {
  std::string payload;
  if (!ReadContainer(kCheckpointMagic, path, &payload)) return false;
  PayloadReader r(payload.data(), payload.size());

  TrainingCheckpoint cp;
  if (!ReadParamRecords(&r, &cp.params)) return false;

  if (!r.I64(&cp.adam_step) || cp.adam_step < 0) return false;
  cp.adam_m.resize(cp.params.size());
  cp.adam_v.resize(cp.params.size());
  for (Tensor& m : cp.adam_m) {
    if (!r.TensorData(&m)) return false;
  }
  for (Tensor& v : cp.adam_v) {
    if (!r.TensorData(&v)) return false;
  }
  // Moments are positional companions of the parameters; their shapes are
  // part of the format, not a caller-side concern.
  for (size_t i = 0; i < cp.params.size(); ++i) {
    if (!cp.adam_m[i].SameShape(cp.params[i].second)) return false;
    if (!cp.adam_v[i].SameShape(cp.params[i].second)) return false;
  }

  uint64_t has_schedule = 0;
  if (!r.U64(&has_schedule) || has_schedule > 1) return false;
  cp.has_schedule = has_schedule == 1;
  if (cp.has_schedule) {
    uint64_t warmup = 0;
    if (!r.F64(&cp.schedule_scale) || !std::isfinite(cp.schedule_scale)) {
      return false;
    }
    if (!r.U64(&warmup) || warmup < 1 || warmup > kMaxDim) return false;
    cp.schedule_warmup = static_cast<int>(warmup);
    if (!r.I64(&cp.schedule_step) || cp.schedule_step < 0) return false;
  }

  if (!r.String(&cp.rng_state, kMaxStringLen)) return false;

  if (!r.I64(&cp.epochs_completed) || cp.epochs_completed < 0) return false;

  uint64_t item_count = 0;
  if (!r.U64(&item_count) || item_count > r.remaining() / 8) return false;
  cp.item_order.resize(static_cast<size_t>(item_count));
  std::vector<bool> seen(static_cast<size_t>(item_count), false);
  for (uint64_t i = 0; i < item_count; ++i) {
    uint64_t v = 0;
    if (!r.U64(&v) || v >= item_count) return false;
    if (seen[static_cast<size_t>(v)]) return false;  // Not a permutation.
    seen[static_cast<size_t>(v)] = true;
    cp.item_order[static_cast<size_t>(i)] = static_cast<int>(v);
  }

  uint64_t mask_count = 0;
  if (!r.U64(&mask_count) || mask_count > r.remaining() / 8) return false;
  cp.static_masks.resize(static_cast<size_t>(mask_count));
  for (std::vector<int>& mask : cp.static_masks) {
    uint64_t len = 0;
    if (!r.U64(&len) || len > r.remaining() / 8) return false;
    mask.resize(static_cast<size_t>(len));
    for (uint64_t i = 0; i < len; ++i) {
      uint64_t v = 0;
      if (!r.U64(&v) || v > kMaxDim) return false;
      mask[static_cast<size_t>(i)] = static_cast<int>(v);
    }
  }

  if (!r.AtEnd()) return false;
  *checkpoint = std::move(cp);
  return true;
}

}  // namespace ssin
