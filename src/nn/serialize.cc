#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>

namespace ssin {

namespace {

constexpr uint64_t kMagic = 0x5353494e4d4f4431ull;  // "SSINMOD1"

void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::istream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

}  // namespace

bool SaveModule(Module* module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  std::vector<Parameter*> params = module->Parameters();
  WriteU64(out, kMagic);
  WriteU64(out, params.size());
  for (Parameter* p : params) {
    WriteU64(out, p->name.size());
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WriteU64(out, p->value.shape().size());
    for (int d : p->value.shape()) WriteU64(out, static_cast<uint64_t>(d));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.numel() *
                                           sizeof(double)));
  }
  return out.good();
}

bool LoadModule(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint64_t magic = 0, count = 0;
  if (!ReadU64(in, &magic) || magic != kMagic) return false;
  if (!ReadU64(in, &count)) return false;

  std::map<std::string, Tensor> records;
  for (uint64_t r = 0; r < count; ++r) {
    uint64_t name_len = 0;
    if (!ReadU64(in, &name_len)) return false;
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    uint64_t rank = 0;
    if (!ReadU64(in, &rank)) return false;
    std::vector<int> shape(rank);
    for (uint64_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadU64(in, &dim)) return false;
      shape[d] = static_cast<int>(dim);
    }
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(double)));
    if (!in.good()) return false;
    records.emplace(std::move(name), std::move(t));
  }

  std::vector<Parameter*> params = module->Parameters();
  if (params.size() != records.size()) return false;
  for (Parameter* p : params) {
    auto it = records.find(p->name);
    if (it == records.end()) return false;
    if (!it->second.SameShape(p->value)) return false;
    p->value = it->second;
  }
  return true;
}

}  // namespace ssin
