#ifndef SSIN_NN_TRANSFORMER_H_
#define SSIN_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace ssin {

/// One Interpolation Transformer Module layer (paper §3.3.3): shielded
/// self-attention with SRPE followed by a position-wise feed-forward
/// network, each wrapped in residual + post-LayerNorm
/// (x = LayerNorm(x + Sublayer(x))).
class EncoderLayer : public Module {
 public:
  EncoderLayer(int d_model, int num_heads, int d_k, int d_ff,
               const AttentionConfig& config, Rng* rng);

  Var Forward(Var x, Var srpe, std::shared_ptr<const AttentionPlan> plan);

  /// Graph-free forward; numerically identical to Forward (residual sums
  /// are IEEE addition in the same pairing, sublayers share kernels).
  Tensor& Infer(const Tensor& x, const Tensor* srpe,
                const AttentionPlan& plan, InferenceWorkspace* ws);

  /// Evaluates this layer only for the trailing rows [tail_begin, L):
  /// keys/values still span all of x, so the output rows are bit-identical
  /// to the corresponding rows of Infer. Returns [L-tail_begin, d_model].
  Tensor& InferTail(const Tensor& x, const Tensor* srpe,
                    const AttentionPlan& plan, int tail_begin,
                    InferenceWorkspace* ws);

  /// Float32 serving forwards mirroring Infer/InferTail against the
  /// converted weight snapshot `w`.
  TensorF32& InferF32(const TensorF32& x, const TensorF32* srpe,
                      const AttentionPlan& plan, const F32WeightCache::Map& w,
                      InferenceWorkspace* ws);
  TensorF32& InferTailF32(const TensorF32& x, const TensorF32* srpe,
                          const AttentionPlan& plan, int tail_begin,
                          const F32WeightCache::Map& w,
                          InferenceWorkspace* ws);

  /// Fused serving forward (see src/nn/fused_serving.h): the attention
  /// epilogue (head concat + output projection + residual + LayerNorm) and
  /// the whole FFN sublayer run as single row-wise kernels, and the FFN
  /// hidden activation lives in an L1 scratch tile instead of an [L, d_ff]
  /// arena tensor. tail_begin >= 1 evaluates only the trailing rows
  /// [tail_begin, L) (pass 0 for the full sequence — the tail variant is
  /// the same code path, unified). Per-element arithmetic is identical to
  /// Infer/InferTail, which remain the bit-exact reference (gated by
  /// SpaFormerConfig::fused_serving).
  Tensor& InferFused(const Tensor& x, const Tensor* srpe,
                     const AttentionPlan& plan, int tail_begin,
                     InferenceWorkspace* ws);
  TensorF32& InferFusedF32(const TensorF32& x, const TensorF32* srpe,
                           const AttentionPlan& plan, int tail_begin,
                           const F32WeightCache::Map& w,
                           InferenceWorkspace* ws);

 private:
  MultiHeadSpaAttention attention_;
  Fcn2 ffn_;
  LayerNormLayer norm1_;
  LayerNormLayer norm2_;
};

/// Stack of T identical encoder layers.
class Encoder : public Module {
 public:
  Encoder(int num_layers, int d_model, int num_heads, int d_k, int d_ff,
          const AttentionConfig& config, Rng* rng);

  /// `plan` is shared (not rebuilt) across all layers of the stack.
  Var Forward(Var x, Var srpe, std::shared_ptr<const AttentionPlan> plan);

  /// Graph-free forward through the whole stack; see EncoderLayer::Infer.
  /// When tail_begin >= 0, the final layer runs its tail variant so the
  /// result holds only the trailing rows [tail_begin, L) — the rows a
  /// prediction head reads during serving. Rows are bit-identical to a
  /// full Infer. `fused` selects the fused serving chain
  /// (EncoderLayer::InferFused) for every layer; false runs the unfused
  /// reference composition.
  Tensor& Infer(const Tensor& x, const Tensor* srpe,
                const AttentionPlan& plan, InferenceWorkspace* ws,
                int tail_begin = -1, bool fused = false);

  /// Float32 serving forward through the stack; see Infer.
  TensorF32& InferF32(const TensorF32& x, const TensorF32* srpe,
                      const AttentionPlan& plan, const F32WeightCache::Map& w,
                      InferenceWorkspace* ws, int tail_begin = -1,
                      bool fused = false);

  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  std::vector<std::unique_ptr<EncoderLayer>> layers_;
};

}  // namespace ssin

#endif  // SSIN_NN_TRANSFORMER_H_
