#ifndef SSIN_NN_TRANSFORMER_H_
#define SSIN_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace ssin {

/// One Interpolation Transformer Module layer (paper §3.3.3): shielded
/// self-attention with SRPE followed by a position-wise feed-forward
/// network, each wrapped in residual + post-LayerNorm
/// (x = LayerNorm(x + Sublayer(x))).
class EncoderLayer : public Module {
 public:
  EncoderLayer(int d_model, int num_heads, int d_k, int d_ff,
               const AttentionConfig& config, Rng* rng);

  Var Forward(Var x, Var srpe, std::shared_ptr<const AttentionPlan> plan);

 private:
  MultiHeadSpaAttention attention_;
  Fcn2 ffn_;
  LayerNormLayer norm1_;
  LayerNormLayer norm2_;
};

/// Stack of T identical encoder layers.
class Encoder : public Module {
 public:
  Encoder(int num_layers, int d_model, int num_heads, int d_k, int d_ff,
          const AttentionConfig& config, Rng* rng);

  /// `plan` is shared (not rebuilt) across all layers of the stack.
  Var Forward(Var x, Var srpe, std::shared_ptr<const AttentionPlan> plan);

  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  std::vector<std::unique_ptr<EncoderLayer>> layers_;
};

}  // namespace ssin

#endif  // SSIN_NN_TRANSFORMER_H_
