#ifndef SSIN_NN_OPTIMIZER_H_
#define SSIN_NN_OPTIMIZER_H_

#include <vector>

#include "nn/module.h"

namespace ssin {

/// Optimizer interface over a fixed parameter list. Gradients are expected
/// to be accumulated into Parameter::grad (see Graph::Backward); Step()
/// consumes them and zeroes them.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update with the current learning rate and clears grads.
  virtual void Step() = 0;

  void set_learning_rate(double lr) { learning_rate_ = lr; }
  double learning_rate() const { return learning_rate_; }

  void ZeroGrad() {
    for (Parameter* p : params_) p->grad.Fill(0.0);
  }

 protected:
  std::vector<Parameter*> params_;
  double learning_rate_ = 1e-3;
};

/// Plain stochastic gradient descent with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(std::vector<Parameter*> params, double weight_decay = 0.0)
      : Optimizer(std::move(params)), weight_decay_(weight_decay) {}

  void Step() override;

 private:
  double weight_decay_;
};

/// Adam (Kingma & Ba, 2015). Paper settings: beta1=0.9, beta2=0.98,
/// eps=1e-9.
class Adam : public Optimizer {
 public:
  explicit Adam(std::vector<Parameter*> params, double beta1 = 0.9,
                double beta2 = 0.98, double eps = 1e-9,
                double weight_decay = 0.0);

  void Step() override;

  int64_t step_count() const { return step_; }

  /// Internal state exposure for training checkpoints.
  const std::vector<Tensor>& moment1() const { return m_; }
  const std::vector<Tensor>& moment2() const { return v_; }

  /// Restores step count and moments from a checkpoint. Validates that the
  /// moment counts and shapes match this optimizer's parameter list before
  /// mutating anything; returns false (state untouched) on any mismatch.
  bool RestoreState(int64_t step, std::vector<Tensor> m,
                    std::vector<Tensor> v);

 private:
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  int64_t step_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// The original Transformer's warmup schedule ("Noam"):
///   lr(step) = factor * d_model^-0.5 * min(step^-0.5, step * warmup^-1.5)
/// Paper §4.1.4 uses warmup_steps = 1200.
class NoamSchedule {
 public:
  NoamSchedule(int d_model, int warmup_steps, double factor = 1.0);

  /// Rebuilds a schedule from checkpointed state: the raw scale
  /// (factor / sqrt(d_model)), the effective warmup, and the step already
  /// taken.
  static NoamSchedule Restore(double scale, int warmup_steps, int64_t step);

  /// Learning rate for a 1-based step index.
  double LearningRate(int64_t step) const;

  /// Advances the internal step and applies the new rate to `opt`.
  void Step(Optimizer* opt);

  int64_t step() const { return step_; }

  /// The warmup length actually in effect (after any caller-side clamping).
  int warmup_steps() const { return static_cast<int>(warmup_); }

  /// The raw schedule scale, factor / sqrt(d_model) (for checkpoints).
  double scale() const { return scale_; }

 private:
  NoamSchedule() : scale_(0.0), warmup_(1.0) {}

  double scale_;
  double warmup_;
  int64_t step_ = 0;
};

}  // namespace ssin

#endif  // SSIN_NN_OPTIMIZER_H_
