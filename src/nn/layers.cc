#include "nn/layers.h"

#include <cmath>

#include "common/simd.h"

namespace ssin {

Linear::Linear(int in_features, int out_features, bool bias, Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter("weight",
                              GlorotUniform(in_features, out_features, rng));
  if (bias) {
    // PyTorch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in)). A
    // non-zero bias matters here — it is what lets the embedding FCNs map
    // a zero input to a non-zero embedding (paper §3.3.1).
    const double bound = 1.0 / std::sqrt(static_cast<double>(in_features));
    bias_ = RegisterParameter(
        "bias", Tensor::RandUniform({out_features}, rng, -bound, bound));
  }
}

Var Linear::Forward(Var x) {
  Graph* g = x.graph;
  Var out = MatMul(x, weight_->Bind(g));
  if (bias_ != nullptr) out = AddRow(out, bias_->Bind(g));
  return out;
}

Tensor& Linear::Infer(const Tensor& x, InferenceWorkspace* ws) {
  Tensor* out = ws->Acquire({x.dim(0), out_features_});
  MatMulInto(x, weight_->value, out);
  if (bias_ != nullptr) {
    // Same arithmetic as AddRow: out[i][j] = (xW)[i][j] + bias[j].
    const int m = out->dim(0), n = out->dim(1);
    const double* b = bias_->value.data();
    for (int i = 0; i < m; ++i) {
      double* row = out->data() + static_cast<int64_t>(i) * n;
      for (int j = 0; j < n; ++j) row[j] += b[j];
    }
  }
  return *out;
}

TensorF32& Linear::InferF32(const TensorF32& x, const F32WeightCache::Map& w,
                            InferenceWorkspace* ws) {
  const int m = x.dim(0);
  TensorF32* out = ws->AcquireF32({m, out_features_});
  const TensorF32& weight = w.at(weight_);
  out->Fill(0.0f);
  // Serving sequences are small (hundreds of rows), so the row loop runs
  // inline rather than through the f64 path's thread-pool dispatch.
  simd::MatMulAccRows<float, simd::VecOps>(x.data(), weight.data(),
                                           out->data(), in_features_,
                                           out_features_, 0, m);
  if (bias_ != nullptr) {
    const float* b = w.at(bias_).data();
    for (int i = 0; i < m; ++i) {
      simd::VecOps::Add(b, out->data() + static_cast<int64_t>(i) *
                               out_features_,
                        out_features_);
    }
  }
  return *out;
}

Fcn2::Fcn2(int in_features, int hidden, int out_features, bool relu,
           bool bias, Rng* rng)
    : first_(in_features, hidden, bias, rng),
      second_(hidden, out_features, bias, rng),
      relu_(relu) {
  RegisterSubmodule("fc1", &first_);
  RegisterSubmodule("fc2", &second_);
}

Var Fcn2::Forward(Var x) {
  Var h = first_.Forward(x);
  if (relu_) h = Relu(h);
  return second_.Forward(h);
}

Tensor& Fcn2::Infer(const Tensor& x, InferenceWorkspace* ws) {
  // The in-place ReLU writes max(h, 0) over the hidden activations —
  // elementwise identical to the autograd Relu's fresh output tensor.
  Tensor& h = first_.Infer(x, ws);
  if (relu_) {
    double* d = h.data();
    for (int64_t i = 0; i < h.numel(); ++i) {
      if (d[i] < 0.0) d[i] = 0.0;
    }
  }
  return second_.Infer(h, ws);
}

TensorF32& Fcn2::InferF32(const TensorF32& x, const F32WeightCache::Map& w,
                          InferenceWorkspace* ws) {
  TensorF32& h = first_.InferF32(x, w, ws);
  if (relu_) simd::VecOps::Relu(h.data(), static_cast<int>(h.numel()));
  return second_.InferF32(h, w, ws);
}

LayerNormLayer::LayerNormLayer(int features, double eps) : eps_(eps) {
  gamma_ = RegisterParameter("gamma", Tensor({features}, 1.0));
  beta_ = RegisterParameter("beta", Tensor({features}));
}

Var LayerNormLayer::Forward(Var x) {
  Graph* g = x.graph;
  return LayerNorm(x, gamma_->Bind(g), beta_->Bind(g), eps_);
}

Tensor& LayerNormLayer::Infer(const Tensor& x, InferenceWorkspace* ws) {
  Tensor* out = ws->Acquire(x.shape());
  LayerNormInto(x, gamma_->value, beta_->value, eps_, out);
  return *out;
}

TensorF32& LayerNormLayer::InferF32(const TensorF32& x,
                                    const F32WeightCache::Map& w,
                                    InferenceWorkspace* ws) {
  SSIN_CHECK_EQ(x.rank(), 2);
  TensorF32* out = ws->AcquireF32(x.shape());
  simd::LayerNormRows<float, simd::VecOps>(
      x.data(), w.at(gamma_).data(), w.at(beta_).data(),
      static_cast<float>(eps_), x.dim(0), x.dim(1), out->data(),
      /*xhat=*/nullptr, /*inv_std=*/nullptr);
  return *out;
}

}  // namespace ssin
