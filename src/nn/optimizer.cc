#include "nn/optimizer.h"

#include <cmath>

namespace ssin {

void Sgd::Step() {
  for (Parameter* p : params_) {
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      double g = p->grad[i];
      if (weight_decay_ > 0.0) g += weight_decay_ * p->value[i];
      p->value[i] -= learning_rate_ * g;
    }
    p->grad.Fill(0.0);
  }
}

Adam::Adam(std::vector<Parameter*> params, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++step_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  for (size_t t = 0; t < params_.size(); ++t) {
    Parameter* p = params_[t];
    Tensor& m = m_[t];
    Tensor& v = v_[t];
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      double g = p->grad[i];
      if (weight_decay_ > 0.0) g += weight_decay_ * p->value[i];
      m[i] = beta1_ * m[i] + (1.0 - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0 - beta2_) * g * g;
      const double m_hat = m[i] / bc1;
      const double v_hat = v[i] / bc2;
      p->value[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
    p->grad.Fill(0.0);
  }
}

bool Adam::RestoreState(int64_t step, std::vector<Tensor> m,
                        std::vector<Tensor> v) {
  if (step < 0) return false;
  if (m.size() != params_.size() || v.size() != params_.size()) return false;
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!m[i].SameShape(params_[i]->value)) return false;
    if (!v[i].SameShape(params_[i]->value)) return false;
  }
  step_ = step;
  m_ = std::move(m);
  v_ = std::move(v);
  return true;
}

NoamSchedule::NoamSchedule(int d_model, int warmup_steps, double factor)
    : scale_(factor / std::sqrt(static_cast<double>(d_model))),
      warmup_(static_cast<double>(warmup_steps)) {
  SSIN_CHECK_GE(warmup_steps, 1);
}

NoamSchedule NoamSchedule::Restore(double scale, int warmup_steps,
                                   int64_t step) {
  SSIN_CHECK_GE(warmup_steps, 1);
  SSIN_CHECK_GE(step, 0);
  NoamSchedule schedule;
  schedule.scale_ = scale;
  schedule.warmup_ = static_cast<double>(warmup_steps);
  schedule.step_ = step;
  return schedule;
}

double NoamSchedule::LearningRate(int64_t step) const {
  SSIN_CHECK_GE(step, 1);
  const double s = static_cast<double>(step);
  return scale_ * std::min(1.0 / std::sqrt(s), s / std::pow(warmup_, 1.5));
}

void NoamSchedule::Step(Optimizer* opt) {
  ++step_;
  opt->set_learning_rate(LearningRate(step_));
}

}  // namespace ssin
