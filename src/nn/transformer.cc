#include "nn/transformer.h"

#include <string>

#include "common/simd.h"
#include "common/telemetry.h"
#include "nn/fused_serving.h"

namespace ssin {

namespace {

inline const double* BiasData(const Parameter* p) {
  return p != nullptr ? p->value.data() : nullptr;
}

inline const float* BiasDataF32(const Parameter* p,
                                const F32WeightCache::Map& w) {
  return p != nullptr ? w.at(p).data() : nullptr;
}

}  // namespace

EncoderLayer::EncoderLayer(int d_model, int num_heads, int d_k, int d_ff,
                           const AttentionConfig& config, Rng* rng)
    : attention_(d_model, num_heads, d_k, config, rng),
      ffn_(d_model, d_ff, d_model, /*relu=*/true, /*bias=*/true, rng),
      norm1_(d_model),
      norm2_(d_model) {
  RegisterSubmodule("attn", &attention_);
  RegisterSubmodule("ffn", &ffn_);
  RegisterSubmodule("norm1", &norm1_);
  RegisterSubmodule("norm2", &norm2_);
}

Var EncoderLayer::Forward(Var x, Var srpe,
                          std::shared_ptr<const AttentionPlan> plan) {
  Var attn;
  {
    SSIN_TRACE_SPAN("encoder.attention");
    attn = attention_.Forward(x, srpe, std::move(plan));
  }
  SSIN_TRACE_SPAN("encoder.ffn");
  x = norm1_.Forward(Add(x, attn));
  Var ff = ffn_.Forward(x);
  return norm2_.Forward(Add(x, ff));
}

Tensor& EncoderLayer::Infer(const Tensor& x, const Tensor* srpe,
                            const AttentionPlan& plan,
                            InferenceWorkspace* ws) {
  // Residual sums run in place on the sublayer output (IEEE addition is
  // commutative, so x + attn and attn += x round identically).
  Tensor* attn;
  {
    SSIN_TRACE_SPAN("encoder.attention");
    attn = &attention_.Infer(x, srpe, plan, ws);
  }
  SSIN_TRACE_SPAN("encoder.ffn");
  attn->Accumulate(x);
  Tensor& x1 = norm1_.Infer(*attn, ws);
  Tensor& ff = ffn_.Infer(x1, ws);
  ff.Accumulate(x1);
  return norm2_.Infer(ff, ws);
}

Tensor& EncoderLayer::InferTail(const Tensor& x, const Tensor* srpe,
                                const AttentionPlan& plan, int tail_begin,
                                InferenceWorkspace* ws) {
  const int d = x.dim(1);
  Tensor* attn;
  {
    SSIN_TRACE_SPAN("encoder.attention");
    attn = &attention_.InferTail(x, srpe, plan, tail_begin, ws);
  }
  SSIN_TRACE_SPAN("encoder.ffn");
  // Residual against the matching trailing rows of x; row r pairs with
  // sequence row tail_begin + r, so the sums round exactly as in Infer.
  const int num_queries = attn->dim(0);
  for (int r = 0; r < num_queries; ++r) {
    const double* x_row =
        x.data() + static_cast<int64_t>(tail_begin + r) * d;
    double* a_row = attn->data() + static_cast<int64_t>(r) * d;
    for (int e = 0; e < d; ++e) a_row[e] += x_row[e];
  }
  Tensor& x1 = norm1_.Infer(*attn, ws);
  Tensor& ff = ffn_.Infer(x1, ws);
  ff.Accumulate(x1);
  return norm2_.Infer(ff, ws);
}

TensorF32& EncoderLayer::InferF32(const TensorF32& x, const TensorF32* srpe,
                                  const AttentionPlan& plan,
                                  const F32WeightCache::Map& w,
                                  InferenceWorkspace* ws) {
  TensorF32* attn;
  {
    SSIN_TRACE_SPAN("encoder.attention");
    attn = &attention_.InferF32(x, srpe, plan, w, ws);
  }
  SSIN_TRACE_SPAN("encoder.ffn");
  simd::VecOps::Add(x.data(), attn->data(), static_cast<int>(attn->numel()));
  TensorF32& x1 = norm1_.InferF32(*attn, w, ws);
  TensorF32& ff = ffn_.InferF32(x1, w, ws);
  simd::VecOps::Add(x1.data(), ff.data(), static_cast<int>(ff.numel()));
  return norm2_.InferF32(ff, w, ws);
}

TensorF32& EncoderLayer::InferTailF32(const TensorF32& x,
                                      const TensorF32* srpe,
                                      const AttentionPlan& plan,
                                      int tail_begin,
                                      const F32WeightCache::Map& w,
                                      InferenceWorkspace* ws) {
  const int d = x.dim(1);
  TensorF32* attn;
  {
    SSIN_TRACE_SPAN("encoder.attention");
    attn = &attention_.InferTailF32(x, srpe, plan, tail_begin, w, ws);
  }
  SSIN_TRACE_SPAN("encoder.ffn");
  const int num_queries = attn->dim(0);
  for (int r = 0; r < num_queries; ++r) {
    simd::VecOps::Add(x.data() + static_cast<int64_t>(tail_begin + r) * d,
                      attn->data() + static_cast<int64_t>(r) * d, d);
  }
  TensorF32& x1 = norm1_.InferF32(*attn, w, ws);
  TensorF32& ff = ffn_.InferF32(x1, w, ws);
  simd::VecOps::Add(x1.data(), ff.data(), static_cast<int>(ff.numel()));
  return norm2_.InferF32(ff, w, ws);
}

Tensor& EncoderLayer::InferFused(const Tensor& x, const Tensor* srpe,
                                 const AttentionPlan& plan, int tail_begin,
                                 InferenceWorkspace* ws) {
  const int length = x.dim(0);
  const int dm = x.dim(1);
  const int nq = length - tail_begin;
  const Linear& wo = attention_.output_proj();
  const Linear& fc1 = ffn_.first();
  const Linear& fc2 = ffn_.second();
  const int d_ff = fc1.out_features();
  Tensor* concat = ws->Acquire({nq, wo.in_features()});
  {
    SSIN_TRACE_SPAN("encoder.attention");
    attention_.InferConcatFused(x, srpe, plan, tail_begin, ws, concat);
  }
  SSIN_TRACE_SPAN("encoder.ffn");
  // One scratch slab serves both fused sublayers: [d_ff] hidden tile +
  // [dm] row temporary.
  double* hidden = ws->ScratchF64(static_cast<size_t>(d_ff) + dm);
  double* tmp = hidden + d_ff;
  Tensor* x1 = ws->Acquire({nq, dm});
  fused::FusedAttentionEpilogueRows<double, simd::VecOps>(
      concat->data(), nq, wo.in_features(), wo.weight_param()->value.data(),
      BiasData(wo.bias_param()), dm,
      x.data() + static_cast<int64_t>(tail_begin) * dm,
      norm1_.gamma_param()->value.data(), norm1_.beta_param()->value.data(),
      norm1_.eps(), tmp, x1->data());
  Tensor* out = ws->Acquire({nq, dm});
  fused::FusedFfnRows<double, simd::VecOps>(
      x1->data(), nq, dm, d_ff, fc1.weight_param()->value.data(),
      BiasData(fc1.bias_param()), fc2.weight_param()->value.data(),
      BiasData(fc2.bias_param()), ffn_.relu(),
      norm2_.gamma_param()->value.data(), norm2_.beta_param()->value.data(),
      norm2_.eps(), hidden, tmp, out->data());
  return *out;
}

TensorF32& EncoderLayer::InferFusedF32(const TensorF32& x,
                                       const TensorF32* srpe,
                                       const AttentionPlan& plan,
                                       int tail_begin,
                                       const F32WeightCache::Map& w,
                                       InferenceWorkspace* ws) {
  const int length = x.dim(0);
  const int dm = x.dim(1);
  const int nq = length - tail_begin;
  const Linear& wo = attention_.output_proj();
  const Linear& fc1 = ffn_.first();
  const Linear& fc2 = ffn_.second();
  const int d_ff = fc1.out_features();
  TensorF32* concat = ws->AcquireF32({nq, wo.in_features()});
  {
    SSIN_TRACE_SPAN("encoder.attention");
    attention_.InferConcatFusedF32(x, srpe, plan, tail_begin, w, ws, concat);
  }
  SSIN_TRACE_SPAN("encoder.ffn");
  float* hidden = ws->ScratchF32(static_cast<size_t>(d_ff) + dm);
  float* tmp = hidden + d_ff;
  TensorF32* x1 = ws->AcquireF32({nq, dm});
  fused::FusedAttentionEpilogueRows<float, simd::VecOps>(
      concat->data(), nq, wo.in_features(), w.at(wo.weight_param()).data(),
      BiasDataF32(wo.bias_param(), w), dm,
      x.data() + static_cast<int64_t>(tail_begin) * dm,
      w.at(norm1_.gamma_param()).data(), w.at(norm1_.beta_param()).data(),
      static_cast<float>(norm1_.eps()), tmp, x1->data());
  TensorF32* out = ws->AcquireF32({nq, dm});
  fused::FusedFfnRows<float, simd::VecOps>(
      x1->data(), nq, dm, d_ff, w.at(fc1.weight_param()).data(),
      BiasDataF32(fc1.bias_param(), w), w.at(fc2.weight_param()).data(),
      BiasDataF32(fc2.bias_param(), w), ffn_.relu(),
      w.at(norm2_.gamma_param()).data(), w.at(norm2_.beta_param()).data(),
      static_cast<float>(norm2_.eps()), hidden, tmp, out->data());
  return *out;
}

Encoder::Encoder(int num_layers, int d_model, int num_heads, int d_k,
                 int d_ff, const AttentionConfig& config, Rng* rng) {
  SSIN_CHECK_GE(num_layers, 1);
  layers_.reserve(num_layers);
  for (int t = 0; t < num_layers; ++t) {
    layers_.push_back(std::make_unique<EncoderLayer>(d_model, num_heads, d_k,
                                                     d_ff, config, rng));
    RegisterSubmodule("layer" + std::to_string(t), layers_.back().get());
  }
}

Var Encoder::Forward(Var x, Var srpe,
                     std::shared_ptr<const AttentionPlan> plan) {
  for (auto& layer : layers_) {
    x = layer->Forward(x, srpe, plan);
  }
  return x;
}

Tensor& Encoder::Infer(const Tensor& x, const Tensor* srpe,
                       const AttentionPlan& plan, InferenceWorkspace* ws,
                       int tail_begin, bool fused) {
  const Tensor* cur = &x;
  const size_t full_layers =
      tail_begin >= 0 ? layers_.size() - 1 : layers_.size();
  Tensor* out = nullptr;
  if (fused) {
    for (size_t t = 0; t < full_layers; ++t) {
      out = &layers_[t]->InferFused(*cur, srpe, plan, /*tail_begin=*/0, ws);
      cur = out;
    }
    if (tail_begin >= 0) {
      out = &layers_.back()->InferFused(*cur, srpe, plan, tail_begin, ws);
    }
    SSIN_CHECK(out != nullptr);
    return *out;
  }
  for (size_t t = 0; t < full_layers; ++t) {
    out = &layers_[t]->Infer(*cur, srpe, plan, ws);
    cur = out;
  }
  if (tail_begin >= 0) {
    out = &layers_.back()->InferTail(*cur, srpe, plan, tail_begin, ws);
  }
  SSIN_CHECK(out != nullptr);
  return *out;
}

TensorF32& Encoder::InferF32(const TensorF32& x, const TensorF32* srpe,
                             const AttentionPlan& plan,
                             const F32WeightCache::Map& w,
                             InferenceWorkspace* ws, int tail_begin,
                             bool fused) {
  const TensorF32* cur = &x;
  const size_t full_layers =
      tail_begin >= 0 ? layers_.size() - 1 : layers_.size();
  TensorF32* out = nullptr;
  if (fused) {
    for (size_t t = 0; t < full_layers; ++t) {
      out = &layers_[t]->InferFusedF32(*cur, srpe, plan, /*tail_begin=*/0, w,
                                       ws);
      cur = out;
    }
    if (tail_begin >= 0) {
      out = &layers_.back()->InferFusedF32(*cur, srpe, plan, tail_begin, w,
                                           ws);
    }
    SSIN_CHECK(out != nullptr);
    return *out;
  }
  for (size_t t = 0; t < full_layers; ++t) {
    out = &layers_[t]->InferF32(*cur, srpe, plan, w, ws);
    cur = out;
  }
  if (tail_begin >= 0) {
    out = &layers_.back()->InferTailF32(*cur, srpe, plan, tail_begin, w, ws);
  }
  SSIN_CHECK(out != nullptr);
  return *out;
}

}  // namespace ssin
