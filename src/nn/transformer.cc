#include "nn/transformer.h"

#include <string>

namespace ssin {

EncoderLayer::EncoderLayer(int d_model, int num_heads, int d_k, int d_ff,
                           const AttentionConfig& config, Rng* rng)
    : attention_(d_model, num_heads, d_k, config, rng),
      ffn_(d_model, d_ff, d_model, /*relu=*/true, /*bias=*/true, rng),
      norm1_(d_model),
      norm2_(d_model) {
  RegisterSubmodule("attn", &attention_);
  RegisterSubmodule("ffn", &ffn_);
  RegisterSubmodule("norm1", &norm1_);
  RegisterSubmodule("norm2", &norm2_);
}

Var EncoderLayer::Forward(Var x, Var srpe,
                          std::shared_ptr<const AttentionPlan> plan) {
  Var attn = attention_.Forward(x, srpe, std::move(plan));
  x = norm1_.Forward(Add(x, attn));
  Var ff = ffn_.Forward(x);
  return norm2_.Forward(Add(x, ff));
}

Encoder::Encoder(int num_layers, int d_model, int num_heads, int d_k,
                 int d_ff, const AttentionConfig& config, Rng* rng) {
  SSIN_CHECK_GE(num_layers, 1);
  layers_.reserve(num_layers);
  for (int t = 0; t < num_layers; ++t) {
    layers_.push_back(std::make_unique<EncoderLayer>(d_model, num_heads, d_k,
                                                     d_ff, config, rng));
    RegisterSubmodule("layer" + std::to_string(t), layers_.back().get());
  }
}

Var Encoder::Forward(Var x, Var srpe,
                     std::shared_ptr<const AttentionPlan> plan) {
  for (auto& layer : layers_) {
    x = layer->Forward(x, srpe, plan);
  }
  return x;
}

}  // namespace ssin
