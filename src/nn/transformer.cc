#include "nn/transformer.h"

#include <string>

#include "common/simd.h"
#include "common/telemetry.h"

namespace ssin {

EncoderLayer::EncoderLayer(int d_model, int num_heads, int d_k, int d_ff,
                           const AttentionConfig& config, Rng* rng)
    : attention_(d_model, num_heads, d_k, config, rng),
      ffn_(d_model, d_ff, d_model, /*relu=*/true, /*bias=*/true, rng),
      norm1_(d_model),
      norm2_(d_model) {
  RegisterSubmodule("attn", &attention_);
  RegisterSubmodule("ffn", &ffn_);
  RegisterSubmodule("norm1", &norm1_);
  RegisterSubmodule("norm2", &norm2_);
}

Var EncoderLayer::Forward(Var x, Var srpe,
                          std::shared_ptr<const AttentionPlan> plan) {
  Var attn;
  {
    SSIN_TRACE_SPAN("encoder.attention");
    attn = attention_.Forward(x, srpe, std::move(plan));
  }
  SSIN_TRACE_SPAN("encoder.ffn");
  x = norm1_.Forward(Add(x, attn));
  Var ff = ffn_.Forward(x);
  return norm2_.Forward(Add(x, ff));
}

Tensor& EncoderLayer::Infer(const Tensor& x, const Tensor* srpe,
                            const AttentionPlan& plan,
                            InferenceWorkspace* ws) {
  // Residual sums run in place on the sublayer output (IEEE addition is
  // commutative, so x + attn and attn += x round identically).
  Tensor* attn;
  {
    SSIN_TRACE_SPAN("encoder.attention");
    attn = &attention_.Infer(x, srpe, plan, ws);
  }
  SSIN_TRACE_SPAN("encoder.ffn");
  attn->Accumulate(x);
  Tensor& x1 = norm1_.Infer(*attn, ws);
  Tensor& ff = ffn_.Infer(x1, ws);
  ff.Accumulate(x1);
  return norm2_.Infer(ff, ws);
}

Tensor& EncoderLayer::InferTail(const Tensor& x, const Tensor* srpe,
                                const AttentionPlan& plan, int tail_begin,
                                InferenceWorkspace* ws) {
  const int d = x.dim(1);
  Tensor* attn;
  {
    SSIN_TRACE_SPAN("encoder.attention");
    attn = &attention_.InferTail(x, srpe, plan, tail_begin, ws);
  }
  SSIN_TRACE_SPAN("encoder.ffn");
  // Residual against the matching trailing rows of x; row r pairs with
  // sequence row tail_begin + r, so the sums round exactly as in Infer.
  const int num_queries = attn->dim(0);
  for (int r = 0; r < num_queries; ++r) {
    const double* x_row =
        x.data() + static_cast<int64_t>(tail_begin + r) * d;
    double* a_row = attn->data() + static_cast<int64_t>(r) * d;
    for (int e = 0; e < d; ++e) a_row[e] += x_row[e];
  }
  Tensor& x1 = norm1_.Infer(*attn, ws);
  Tensor& ff = ffn_.Infer(x1, ws);
  ff.Accumulate(x1);
  return norm2_.Infer(ff, ws);
}

TensorF32& EncoderLayer::InferF32(const TensorF32& x, const TensorF32* srpe,
                                  const AttentionPlan& plan,
                                  const F32WeightCache::Map& w,
                                  InferenceWorkspace* ws) {
  TensorF32* attn;
  {
    SSIN_TRACE_SPAN("encoder.attention");
    attn = &attention_.InferF32(x, srpe, plan, w, ws);
  }
  SSIN_TRACE_SPAN("encoder.ffn");
  simd::VecOps::Add(x.data(), attn->data(), static_cast<int>(attn->numel()));
  TensorF32& x1 = norm1_.InferF32(*attn, w, ws);
  TensorF32& ff = ffn_.InferF32(x1, w, ws);
  simd::VecOps::Add(x1.data(), ff.data(), static_cast<int>(ff.numel()));
  return norm2_.InferF32(ff, w, ws);
}

TensorF32& EncoderLayer::InferTailF32(const TensorF32& x,
                                      const TensorF32* srpe,
                                      const AttentionPlan& plan,
                                      int tail_begin,
                                      const F32WeightCache::Map& w,
                                      InferenceWorkspace* ws) {
  const int d = x.dim(1);
  TensorF32* attn;
  {
    SSIN_TRACE_SPAN("encoder.attention");
    attn = &attention_.InferTailF32(x, srpe, plan, tail_begin, w, ws);
  }
  SSIN_TRACE_SPAN("encoder.ffn");
  const int num_queries = attn->dim(0);
  for (int r = 0; r < num_queries; ++r) {
    simd::VecOps::Add(x.data() + static_cast<int64_t>(tail_begin + r) * d,
                      attn->data() + static_cast<int64_t>(r) * d, d);
  }
  TensorF32& x1 = norm1_.InferF32(*attn, w, ws);
  TensorF32& ff = ffn_.InferF32(x1, w, ws);
  simd::VecOps::Add(x1.data(), ff.data(), static_cast<int>(ff.numel()));
  return norm2_.InferF32(ff, w, ws);
}

Encoder::Encoder(int num_layers, int d_model, int num_heads, int d_k,
                 int d_ff, const AttentionConfig& config, Rng* rng) {
  SSIN_CHECK_GE(num_layers, 1);
  layers_.reserve(num_layers);
  for (int t = 0; t < num_layers; ++t) {
    layers_.push_back(std::make_unique<EncoderLayer>(d_model, num_heads, d_k,
                                                     d_ff, config, rng));
    RegisterSubmodule("layer" + std::to_string(t), layers_.back().get());
  }
}

Var Encoder::Forward(Var x, Var srpe,
                     std::shared_ptr<const AttentionPlan> plan) {
  for (auto& layer : layers_) {
    x = layer->Forward(x, srpe, plan);
  }
  return x;
}

Tensor& Encoder::Infer(const Tensor& x, const Tensor* srpe,
                       const AttentionPlan& plan, InferenceWorkspace* ws,
                       int tail_begin) {
  const Tensor* cur = &x;
  const size_t full_layers =
      tail_begin >= 0 ? layers_.size() - 1 : layers_.size();
  Tensor* out = nullptr;
  for (size_t t = 0; t < full_layers; ++t) {
    out = &layers_[t]->Infer(*cur, srpe, plan, ws);
    cur = out;
  }
  if (tail_begin >= 0) {
    out = &layers_.back()->InferTail(*cur, srpe, plan, tail_begin, ws);
  }
  SSIN_CHECK(out != nullptr);
  return *out;
}

TensorF32& Encoder::InferF32(const TensorF32& x, const TensorF32* srpe,
                             const AttentionPlan& plan,
                             const F32WeightCache::Map& w,
                             InferenceWorkspace* ws, int tail_begin) {
  const TensorF32* cur = &x;
  const size_t full_layers =
      tail_begin >= 0 ? layers_.size() - 1 : layers_.size();
  TensorF32* out = nullptr;
  for (size_t t = 0; t < full_layers; ++t) {
    out = &layers_[t]->InferF32(*cur, srpe, plan, w, ws);
    cur = out;
  }
  if (tail_begin >= 0) {
    out = &layers_.back()->InferTailF32(*cur, srpe, plan, tail_begin, w, ws);
  }
  SSIN_CHECK(out != nullptr);
  return *out;
}

}  // namespace ssin
