#ifndef SSIN_NN_INFERENCE_H_
#define SSIN_NN_INFERENCE_H_

#include <memory>
#include <vector>

#include "tensor/attention_kernels.h"
#include "tensor/tensor.h"

namespace ssin {

/// Reusable activation buffers for one graph-free forward pass.
///
/// The inference path (Module::Infer / SpaFormer::Predict) evaluates the
/// network without an autograd Graph: no tape nodes, no backward closures,
/// no gradient buffers. Intermediate activations instead come from this
/// bump-allocated arena: Acquire() hands out tensors in call order and
/// Reset() rewinds the cursor, so after the first sequence every subsequent
/// forward pass with the same shapes runs allocation-free. A workspace is
/// single-threaded by design — batched serving keeps one per thread-pool
/// slot.
class InferenceWorkspace {
 public:
  InferenceWorkspace() = default;
  InferenceWorkspace(const InferenceWorkspace&) = delete;
  InferenceWorkspace& operator=(const InferenceWorkspace&) = delete;

  /// Rewinds the arena; previously acquired tensors may be handed out
  /// again. Call once at the start of each sequence.
  void Reset() { cursor_ = 0; }

  /// Next arena tensor, reshaped to `shape` if it does not match.
  /// Contents are unspecified (kernels that accumulate must clear it —
  /// MatMulInto and PackedAttentionForwardInto do). The returned pointer
  /// stays valid until the workspace is destroyed; the *contents* are
  /// valid until the next Reset().
  Tensor* Acquire(const std::vector<int>& shape);

  /// Shared attention scratch (softmax weights + scores). Inference never
  /// reads it back, so one context serves every layer/head invocation.
  AttentionContext* attention_context() { return &attention_context_; }

  /// Arena slots allocated so far (test hook: steady-state forward passes
  /// must not grow it).
  size_t num_slots() const { return slots_.size(); }

  /// Total bytes held by the arena tensors (telemetry:
  /// serve.workspace_arena_bytes gauges the per-call maximum).
  size_t ArenaBytes() const;

 private:
  // unique_ptr slots: the vector may grow while earlier tensors are still
  // referenced by the caller, so the tensors themselves must not move.
  std::vector<std::unique_ptr<Tensor>> slots_;
  size_t cursor_ = 0;
  AttentionContext attention_context_;
};

}  // namespace ssin

#endif  // SSIN_NN_INFERENCE_H_
