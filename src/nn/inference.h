#ifndef SSIN_NN_INFERENCE_H_
#define SSIN_NN_INFERENCE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "tensor/attention_kernels.h"
#include "tensor/tensor.h"

namespace ssin {

class Module;
struct Parameter;

/// Reusable activation buffers for one graph-free forward pass.
///
/// The inference path (Module::Infer / SpaFormer::Predict) evaluates the
/// network without an autograd Graph: no tape nodes, no backward closures,
/// no gradient buffers. Intermediate activations instead come from this
/// bump-allocated arena: Acquire() hands out tensors in call order and
/// Reset() rewinds the cursor, so after the first sequence every subsequent
/// forward pass with the same shapes runs allocation-free. A workspace is
/// single-threaded by design — batched serving keeps one per thread-pool
/// slot.
///
/// The float32 serving mode draws its activations from a parallel arena of
/// TensorF32 slots (AcquireF32) with its own cursor, so mixed f64/f32 use
/// of one workspace — e.g. layout embedding in f64, then f32 serving —
/// never aliases storage across precisions.
class InferenceWorkspace {
 public:
  InferenceWorkspace() = default;
  InferenceWorkspace(const InferenceWorkspace&) = delete;
  InferenceWorkspace& operator=(const InferenceWorkspace&) = delete;

  /// Rewinds the arena; previously acquired tensors may be handed out
  /// again. Call once at the start of each sequence.
  void Reset() {
    cursor_ = 0;
    f32_cursor_ = 0;
  }

  /// Next arena tensor, reshaped to `shape` if it does not match.
  /// Contents are unspecified (kernels that accumulate must clear it —
  /// MatMulInto and PackedAttentionForwardInto do). The returned pointer
  /// stays valid until the workspace is destroyed; the *contents* are
  /// valid until the next Reset().
  Tensor* Acquire(const std::vector<int>& shape);

  /// Float32 sibling of Acquire, backed by its own slot vector and cursor.
  TensorF32* AcquireF32(const std::vector<int>& shape);

  /// Shared attention scratch (softmax weights + scores). Inference never
  /// reads it back, so one context serves every layer/head invocation.
  AttentionContext* attention_context() { return &attention_context_; }

  /// Per-query score scratch for the f32 attention kernel (the f64 kernel
  /// keeps its scratch inside the AttentionContext).
  std::vector<float>* f32_scores() { return &f32_scores_; }

  /// Reusable flat scratch for the fused serving kernels' per-row tiles
  /// (FFN hidden + epilogue temporaries). Grows monotonically, never
  /// shrinks; contents are unspecified. Unlike Acquire there is no cursor —
  /// each fused layer invocation re-slices the same buffer, which is what
  /// keeps the [L, d_ff] hidden activation out of the arena entirely.
  double* ScratchF64(size_t n);
  float* ScratchF32(size_t n);

  /// Reusable pointer-table scratch for the fused QKV projection (the
  /// per-head weight pointers), one per precision.
  std::vector<const double*>* weight_ptrs() { return &weight_ptrs_; }
  std::vector<const float*>* weight_ptrs_f32() { return &weight_ptrs_f32_; }

  /// Arena slots allocated so far (test hook: steady-state forward passes
  /// must not grow it).
  size_t num_slots() const { return slots_.size(); }
  size_t num_f32_slots() const { return f32_slots_.size(); }

  /// Total bytes held by the arena tensors (both precisions) plus the
  /// fused-kernel scratch tiles (telemetry: serve.workspace_arena_bytes
  /// gauges the per-call value, serve.arena_peak_bytes the process peak).
  size_t ArenaBytes() const;

 private:
  // unique_ptr slots: the vector may grow while earlier tensors are still
  // referenced by the caller, so the tensors themselves must not move.
  std::vector<std::unique_ptr<Tensor>> slots_;
  std::vector<std::unique_ptr<TensorF32>> f32_slots_;
  size_t cursor_ = 0;
  size_t f32_cursor_ = 0;
  AttentionContext attention_context_;
  std::vector<float> f32_scores_;
  std::vector<double> scratch_f64_;
  std::vector<float> scratch_f32_;
  std::vector<const double*> weight_ptrs_;
  std::vector<const float*> weight_ptrs_f32_;
};

/// Float32 snapshots of a module's trained f64 parameters, converted once
/// and shared immutably by every f32 forward pass.
///
/// The snapshot is keyed by Parameter pointer — the InferF32 chain looks
/// its weights up with the same Parameter* it trains through, so there is
/// no separate naming scheme to keep in sync. Like cached SequenceLayouts,
/// a snapshot bakes in the weights it was converted from: the owning
/// interpolator must Clear() on every weight mutation (training, load,
/// parameter copy), and the hit/invalidation counters let tests pin that
/// contract. Cleared snapshots stay alive for in-flight passes via
/// shared_ptr.
class F32WeightCache {
 public:
  using Map = std::unordered_map<const Parameter*, TensorF32>;

  /// The current snapshot, converting `module`'s parameters first if none
  /// exists (double-checked under a mutex; safe for concurrent servers).
  std::shared_ptr<const Map> EnsureFrom(Module* module);

  /// Drops the snapshot (a weight-mutation invalidation).
  void Clear();

  bool empty() const;

  /// Statistics: conversions() counts snapshot builds, invalidations()
  /// counts Clear() calls.
  int64_t conversions() const {
    return conversions_.load(std::memory_order_relaxed);
  }
  int64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const Map> snapshot_;
  std::atomic<int64_t> conversions_{0};
  std::atomic<int64_t> invalidations_{0};
};

}  // namespace ssin

#endif  // SSIN_NN_INFERENCE_H_
