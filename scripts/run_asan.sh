#!/usr/bin/env bash
# Builds the serializer/loader robustness tests under ASan+UBSan and runs
# them: the corrupt-checkpoint sweeps (truncation at every offset, byte
# flips, hostile lengths) and the ragged/non-finite CSV tests must be clean
# of memory errors, not merely return false.
#
#   scripts/run_asan.sh [build-dir]
#
# Uses a dedicated build tree (default build-asan/) so the instrumented
# objects never mix with the regular build/ tree.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "${BUILD_DIR}" -S . -DSSIN_ADDRESS_SANITIZER=ON
cmake --build "${BUILD_DIR}" -j --target serialize_test csv_loader_test \
  checkpoint_resume_test inference_equivalence_test \
  kernel_differential_test serve_test geo_test knn_shielding_test

echo "== kernel_differential_test (ASan+UBSan) =="
# The SIMD kernels' unrolled tails and row-split partitions must not read
# or write a single byte out of bounds at any sweep shape.
"${BUILD_DIR}/tests/kernel_differential_test"

echo "== serialize_test (ASan+UBSan) =="
"${BUILD_DIR}/tests/serialize_test"

echo "== csv_loader_test (ASan+UBSan) =="
"${BUILD_DIR}/tests/csv_loader_test"

echo "== checkpoint_resume_test (ASan+UBSan) =="
"${BUILD_DIR}/tests/checkpoint_resume_test"

echo "== inference_equivalence_test (ASan+UBSan) =="
# The inference engine's workspace arena and layout cache must be clean of
# memory errors, including across cache invalidation and reuse.
"${BUILD_DIR}/tests/inference_equivalence_test"

echo "== geo_test (ASan+UBSan) =="
# The spatial index's grid-cell arithmetic and ring walks must stay in
# bounds for queries outside the indexed bounding box and degenerate
# (empty / coincident / collinear) point sets.
"${BUILD_DIR}/tests/geo_test"

echo "== knn_shielding_test (ASan+UBSan) =="
# Neighbor-limited plans index packed SRPE rows through int64 pair rows;
# every gather and the on-demand RelposForPairs path must be clean.
"${BUILD_DIR}/tests/knn_shielding_test"

echo "== serve_test (ASan+UBSan) =="
# Queued requests, promise lifetimes, and the double-buffered registry
# swap must be clean of use-after-free across shutdown and hot-swap.
"${BUILD_DIR}/tests/serve_test"

echo "ASan run clean."
