#!/usr/bin/env bash
# Runs the recorded benchmark suites:
#  * the attention kernel sweep (paper Figure 7 plus the full-sequence
#    packed-vs-dense SRPE pipeline comparison at the paper configuration
#    L=123, T=3, H=2, d_k=16) -> BENCH_attention.json, including a
#    "serve_hot_path" summary with the active SIMD ISA and the
#    scalar-vs-SIMD / f64-vs-f32 serving-kernel speedups
#  * the model-cost bench (paper Table 5) with the serving-throughput
#    section comparing the graph-free inference engine against the
#    autograd forward, plus the accuracy-gated f32 serving mode
#    -> BENCH_inference.json (includes the active SIMD ISA and an
#    embedded "telemetry" snapshot of the serving phase)
#  * the telemetry overhead bench -> BENCH_telemetry_overhead.json
#  * a telemetry-instrumented evaluation pass -> telemetry_train.json and
#    telemetry_serve.json (versioned metric reports that are also Chrome
#    trace_event files — load them in chrome://tracing or Perfetto)
# All JSON reports land in the repo root and are checked in.
#
#   scripts/run_bench.sh [build-dir] [extra benchmark flags...]
#
# Pass a benchmark filter to restrict the Figure 7 run, e.g.
#   scripts/run_bench.sh build --benchmark_filter=SpaFormerSeq
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
shift || true

cmake --build "$BUILD" -j --target bench_fig7_attention_kernel \
  --target bench_table5_model_cost --target bench_telemetry_overhead \
  --target quickstart

"$BUILD"/bench/bench_fig7_attention_kernel \
  --benchmark_out=BENCH_attention.json \
  --benchmark_out_format=json \
  --benchmark_repetitions=1 \
  "$@"

# Summarize the serving hot-path trio into a top-level "serve_hot_path"
# block: the active ISA (bench main records it in the context) and the
# scalar-vs-SIMD / f64-vs-f32 speedups, so the headline numbers don't have
# to be re-derived from the raw benchmark entries.
python3 - <<'EOF'
import json

with open("BENCH_attention.json") as f:
    report = json.load(f)

times = {
    b["name"]: b["real_time"]
    for b in report.get("benchmarks", [])
    if b["name"].startswith("BM_ServeHotPath_")
}
ns_per_pair = {
    b["name"]: b.get("ns_per_pair")
    for b in report.get("benchmarks", [])
    if b["name"].startswith("BM_ServeHotPath_")
}
scalar = times.get("BM_ServeHotPath_Scalar")
simd = times.get("BM_ServeHotPath_Simd")
f32 = times.get("BM_ServeHotPath_SimdF32")
if scalar and simd and f32:
    summary = {
        "simd_isa": report.get("context", {}).get("simd_isa", "unknown"),
        "config": "L=123 T=3 H=2 d_k=16 d_ff=256",
        "scalar_us": scalar,
        "simd_f64_us": simd,
        "simd_f32_us": f32,
        "ns_per_pair": ns_per_pair,
        "simd_f64_speedup_vs_scalar": scalar / simd,
        "simd_f32_speedup_vs_scalar": scalar / f32,
        "f32_speedup_vs_f64": simd / f32,
    }
    report["serve_hot_path"] = summary
    with open("BENCH_attention.json", "w") as f:
        json.dump(report, f, indent=1)
        f.write("\n")
    print("serve hot path [%s]: scalar %.1fus, simd f64 %.1fus (%.2fx), "
          "simd f32 %.1fus (%.2fx)" % (
              summary["simd_isa"], scalar, simd,
              summary["simd_f64_speedup_vs_scalar"], f32,
              summary["simd_f32_speedup_vs_scalar"]))
else:
    print("serve hot path: benches filtered out of this run; summary skipped")
EOF

echo "Wrote BENCH_attention.json"

SSIN_BENCH_INFERENCE_JSON=BENCH_inference.json \
  "$BUILD"/bench/bench_table5_model_cost

echo "Wrote BENCH_inference.json"

SSIN_BENCH_TELEMETRY_JSON=BENCH_telemetry_overhead.json \
  "$BUILD"/bench/bench_telemetry_overhead

echo "Wrote BENCH_telemetry_overhead.json"

# Telemetry reports from an instrumented end-to-end run (the quickstart
# example runs EvaluateInterpolator with EvalOptions::telemetry on when
# SSIN_TELEMETRY_DIR is set).
SSIN_TELEMETRY_DIR=. "$BUILD"/examples/quickstart >/dev/null

echo "Wrote telemetry_train.json and telemetry_serve.json"
