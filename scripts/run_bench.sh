#!/usr/bin/env bash
# Runs the recorded benchmark suites:
#  * the attention kernel sweep (paper Figure 7 plus the full-sequence
#    packed-vs-dense SRPE pipeline comparison at the paper configuration
#    L=123, T=3, H=2, d_k=16) -> BENCH_attention.json
#  * the model-cost bench (paper Table 5) with the serving-throughput
#    section comparing the graph-free inference engine against the
#    autograd forward -> BENCH_inference.json (includes an embedded
#    "telemetry" snapshot of the serving phase)
#  * the telemetry overhead bench -> BENCH_telemetry_overhead.json
#  * a telemetry-instrumented evaluation pass -> telemetry_train.json and
#    telemetry_serve.json (versioned metric reports that are also Chrome
#    trace_event files — load them in chrome://tracing or Perfetto)
# All JSON reports land in the repo root and are checked in.
#
#   scripts/run_bench.sh [build-dir] [extra benchmark flags...]
#
# Pass a benchmark filter to restrict the Figure 7 run, e.g.
#   scripts/run_bench.sh build --benchmark_filter=SpaFormerSeq
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
shift || true

cmake --build "$BUILD" -j --target bench_fig7_attention_kernel \
  --target bench_table5_model_cost --target bench_telemetry_overhead \
  --target quickstart

"$BUILD"/bench/bench_fig7_attention_kernel \
  --benchmark_out=BENCH_attention.json \
  --benchmark_out_format=json \
  --benchmark_repetitions=1 \
  "$@"

echo "Wrote BENCH_attention.json"

SSIN_BENCH_INFERENCE_JSON=BENCH_inference.json \
  "$BUILD"/bench/bench_table5_model_cost

echo "Wrote BENCH_inference.json"

SSIN_BENCH_TELEMETRY_JSON=BENCH_telemetry_overhead.json \
  "$BUILD"/bench/bench_telemetry_overhead

echo "Wrote BENCH_telemetry_overhead.json"

# Telemetry reports from an instrumented end-to-end run (the quickstart
# example runs EvaluateInterpolator with EvalOptions::telemetry on when
# SSIN_TELEMETRY_DIR is set).
SSIN_TELEMETRY_DIR=. "$BUILD"/examples/quickstart >/dev/null

echo "Wrote telemetry_train.json and telemetry_serve.json"
