#!/usr/bin/env bash
# Runs the attention benchmark suite (paper Figure 7 kernel sweep plus the
# full-sequence packed-vs-dense SRPE pipeline comparison at the paper
# configuration L=123, T=3, H=2, d_k=16) and records the JSON report at
# BENCH_attention.json in the repo root.
#
#   scripts/run_bench.sh [build-dir] [extra benchmark flags...]
#
# Pass a benchmark filter to restrict the run, e.g.
#   scripts/run_bench.sh build --benchmark_filter=SpaFormerSeq
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
shift || true

cmake --build "$BUILD" -j --target bench_fig7_attention_kernel

"$BUILD"/bench/bench_fig7_attention_kernel \
  --benchmark_out=BENCH_attention.json \
  --benchmark_out_format=json \
  --benchmark_repetitions=1 \
  "$@"

echo "Wrote BENCH_attention.json"
