#!/usr/bin/env bash
# Runs the recorded benchmark suites:
#  * the attention kernel sweep (paper Figure 7 plus the full-sequence
#    packed-vs-dense SRPE pipeline comparison at the paper configuration
#    L=123, T=3, H=2, d_k=16) -> BENCH_attention.json, including a
#    "serve_hot_path" summary with the active SIMD ISA, the
#    scalar-vs-SIMD / f64-vs-f32 serving-kernel speedups, and a "fused"
#    block with the fused-chain speedups and the real Predict workspace
#    arena bytes fused vs. unfused
#  * the model-cost bench (paper Table 5) with the serving-throughput
#    section comparing the graph-free inference engine against the
#    autograd forward, plus the accuracy-gated f32 serving mode
#    -> BENCH_inference.json (includes the active SIMD ISA and an
#    embedded "telemetry" snapshot of the serving phase)
#  * the telemetry overhead bench -> BENCH_telemetry_overhead.json
#  * a telemetry-instrumented evaluation pass -> telemetry/telemetry_train.json
#    and telemetry/telemetry_serve.json (versioned metric reports that are also Chrome
#    trace_event files — load them in chrome://tracing or Perfetto)
# All JSON reports land in the repo root and are checked in.
#
# The benches always run from a dedicated `build-bench` tree configured
# Release + native ISA, regardless of how the developer's main `build`
# tree is configured — checked-in numbers must never come from a debug
# binary, and the script refuses to write JSON if the binary reports a
# non-Release library build.
#
#   scripts/run_bench.sh [build-dir] [extra benchmark flags...]
#
# Pass a benchmark filter to restrict the Figure 7 run, e.g.
#   scripts/run_bench.sh build-bench --benchmark_filter=SpaFormerSeq
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build-bench}
shift || true

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release -DSSIN_NATIVE_ARCH=ON \
  >/dev/null
cmake --build "$BUILD" -j --target bench_fig7_attention_kernel \
  --target bench_table5_model_cost --target bench_telemetry_overhead \
  --target bench_serving --target bench_scaling --target quickstart

# Provenance gate: a debug-built benchmark binary must not overwrite the
# checked-in reports. The bench main records the compile flags of the
# ssin kernels as "ssin_build_type" in the JSON context; probe it before
# running anything expensive.
"$BUILD"/bench/bench_fig7_attention_kernel \
  --benchmark_filter='BM_BuildPlan/123$' \
  --benchmark_min_time=0.001 \
  --benchmark_out=.bench_probe.json \
  --benchmark_out_format=json >/dev/null
python3 - <<'EOF'
import json, sys

with open(".bench_probe.json") as f:
    context = json.load(f).get("context", {})
# "library_build_type" describes the system benchmark harness library
# (distro packages ship it debug); "ssin_build_type" records the flags
# this repo's kernels were compiled with — that is the provenance gate.
build_type = context.get("ssin_build_type", "unknown")
if build_type != "release":
    sys.exit("refusing to record benchmarks: ssin_build_type=%r "
             "(want 'release') — the bench tree is misconfigured"
             % build_type)
print("bench provenance OK: ssin_build_type=release, simd_isa=%s"
      % context.get("simd_isa", "unknown"))
EOF
rm -f .bench_probe.json

"$BUILD"/bench/bench_fig7_attention_kernel \
  --benchmark_out=BENCH_attention.json \
  --benchmark_out_format=json \
  --benchmark_repetitions=1 \
  "$@"

# Summarize the serving hot-path family into a top-level "serve_hot_path"
# block: the active ISA (bench main records it in the context), the
# scalar-vs-SIMD / f64-vs-f32 speedups, and the fused-chain block (fusion
# speedups plus the measured Predict arena bytes), so the headline numbers
# don't have to be re-derived from the raw benchmark entries.
python3 - <<'EOF'
import json, sys

with open("BENCH_attention.json") as f:
    report = json.load(f)

build_type = report.get("context", {}).get("ssin_build_type", "unknown")
if build_type != "release":
    sys.exit("refusing to keep BENCH_attention.json: ssin_build_type=%r"
             % build_type)

serve = {
    b["name"]: b
    for b in report.get("benchmarks", [])
    if b["name"].startswith("BM_ServeHotPath_")
}
times = {name: b["real_time"] for name, b in serve.items()}
ns_per_pair = {name: b.get("ns_per_pair") for name, b in serve.items()}
scalar = times.get("BM_ServeHotPath_Scalar")
simd = times.get("BM_ServeHotPath_Simd")
f32 = times.get("BM_ServeHotPath_SimdF32")
if scalar and simd and f32:
    summary = {
        "simd_isa": report.get("context", {}).get("simd_isa", "unknown"),
        "config": "L=123 T=3 H=2 d_k=16 d_ff=256",
        "scalar_us": scalar,
        "simd_f64_us": simd,
        "simd_f32_us": f32,
        "ns_per_pair": ns_per_pair,
        "simd_f64_speedup_vs_scalar": scalar / simd,
        "simd_f32_speedup_vs_scalar": scalar / f32,
        "f32_speedup_vs_f64": simd / f32,
    }
    fused = times.get("BM_ServeHotPath_Fused")
    fused_f32 = times.get("BM_ServeHotPath_FusedF32")
    if fused and fused_f32:
        arena_fused = serve["BM_ServeHotPath_Fused"].get("arena_bytes_fused")
        arena_unfused = serve["BM_ServeHotPath_Fused"].get(
            "arena_bytes_unfused")
        fused_block = {
            "fused_f64_us": fused,
            "fused_f32_us": fused_f32,
            "fused_f64_speedup_vs_simd": simd / fused,
            "fused_f64_speedup_vs_scalar": scalar / fused,
            "fused_f32_speedup_vs_simd_f32": f32 / fused_f32,
            "arena_bytes_fused": arena_fused,
            "arena_bytes_unfused": arena_unfused,
        }
        if arena_fused and arena_unfused:
            reduction = 1.0 - arena_fused / arena_unfused
            fused_block["arena_reduction"] = reduction
            if reduction < 0.30:
                sys.exit("fused serving arena reduction %.1f%% below the "
                         "30%% floor (fused=%d unfused=%d)"
                         % (100 * reduction, arena_fused, arena_unfused))
        summary["fused"] = fused_block
        print("fused serving: f64 %.1fus (%.2fx vs simd), f32 %.1fus "
              "(%.2fx vs simd f32), arena %.0f -> %.0f bytes (-%.0f%%)" % (
                  fused, fused_block["fused_f64_speedup_vs_simd"],
                  fused_f32, fused_block["fused_f32_speedup_vs_simd_f32"],
                  arena_unfused or 0, arena_fused or 0,
                  100 * fused_block.get("arena_reduction", 0)))
    report["serve_hot_path"] = summary
    with open("BENCH_attention.json", "w") as f:
        json.dump(report, f, indent=1)
        f.write("\n")
    print("serve hot path [%s]: scalar %.1fus, simd f64 %.1fus (%.2fx), "
          "simd f32 %.1fus (%.2fx)" % (
              summary["simd_isa"], scalar, simd,
              summary["simd_f64_speedup_vs_scalar"], f32,
              summary["simd_f32_speedup_vs_scalar"]))
else:
    print("serve hot path: benches filtered out of this run; summary skipped")
EOF

echo "Wrote BENCH_attention.json"

# Neighbor-limited scaling study (ROADMAP item 3): ms-vs-L at L in
# {123, 1k, 5k, 10k} and accuracy-vs-k at L=1000. The bench embeds its own
# ssin_build_type provenance; gate on it, sanity-check the curve, and merge
# it into BENCH_attention.json as the "scaling" block.
SSIN_BENCH_SCALING_JSON=.bench_scaling.json "$BUILD"/bench/bench_scaling
python3 - <<'EOF'
import json, sys

with open(".bench_scaling.json") as f:
    scaling = json.load(f)
if scaling.get("ssin_build_type") != "release":
    sys.exit("refusing to merge scaling block: ssin_build_type=%r"
             % scaling.get("ssin_build_type"))

curve = scaling.get("ms_vs_l", [])
knn = {p["length"]: p for p in curve if p["neighbor_k"] > 0}
if sorted(knn) != [123, 1000, 5000, 10000]:
    sys.exit("scaling ms-vs-L lengths %r != [123, 1k, 5k, 10k]" % sorted(knn))
k = scaling.get("neighbor_k", 0)
for length, p in knn.items():
    if not p.get("timed") or p.get("warm_serve_ms", 0) <= 0:
        sys.exit("scaling point L=%d was not timed" % length)
    if p["pairs"] > length * (k + 2):
        sys.exit("scaling point L=%d has %d pairs, above the O(L*k) bound"
                 % (length, p["pairs"]))

points = scaling.get("accuracy_vs_k", {}).get("points", [])
if [p["neighbor_k"] for p in points] != [4, 8, 16, 32, 64, 0]:
    sys.exit("scaling accuracy sweep ks are wrong: %r"
             % [p["neighbor_k"] for p in points])

with open("BENCH_attention.json") as f:
    report = json.load(f)
report["scaling"] = scaling
with open("BENCH_attention.json", "w") as f:
    json.dump(report, f, indent=1)
    f.write("\n")
print("scaling: " + ", ".join(
    "L=%d %.0fms" % (length, knn[length]["warm_serve_ms"])
    for length in sorted(knn)) + " (k=%d warm serve); accuracy full rmse "
    "%.4f vs k=32 %.4f" % (
        k, [p for p in points if p["neighbor_k"] == 0][0]["rmse"],
        [p for p in points if p["neighbor_k"] == 32][0]["rmse"]))
EOF
rm -f .bench_scaling.json
echo "Merged scaling block into BENCH_attention.json"

SSIN_BENCH_INFERENCE_JSON=BENCH_inference.json \
  "$BUILD"/bench/bench_table5_model_cost

echo "Wrote BENCH_inference.json"

SSIN_BENCH_TELEMETRY_JSON=BENCH_telemetry_overhead.json \
  "$BUILD"/bench/bench_telemetry_overhead

echo "Wrote BENCH_telemetry_overhead.json"

# Serving-core load replay: the throughput-vs-latency curve at the three
# target rates. The bench embeds its own ssin_build_type provenance; gate
# on it the same way as the kernel benches before keeping the report.
SSIN_BENCH_SERVING_JSON=BENCH_serving.json "$BUILD"/bench/bench_serving
python3 - <<'EOF'
import json, sys

with open("BENCH_serving.json") as f:
    report = json.load(f)
if report.get("ssin_build_type") != "release":
    sys.exit("refusing to keep BENCH_serving.json: ssin_build_type=%r"
             % report.get("ssin_build_type"))
curve = report.get("curve", [])
targets = [point.get("target_qps") for point in curve]
if targets != [1000.0, 10000.0, 100000.0]:
    sys.exit("BENCH_serving.json curve targets %r != [1k, 10k, 100k] qps"
             % targets)
for point in curve:
    if point.get("accepted", 0) <= 0 or point.get("p99_us", 0) <= 0:
        sys.exit("BENCH_serving.json curve point %r served nothing"
                 % point.get("target_qps"))
print("serving curve [%s]: " % report.get("simd_isa", "unknown") +
      ", ".join("%gqps -> %.0f achieved, p99 %.0fus, shed %d"
                % (p["target_qps"], p["achieved_qps"], p["p99_us"],
                   p["rejected"]) for p in curve))
EOF

echo "Wrote BENCH_serving.json"

# Telemetry reports from an instrumented end-to-end run (the quickstart
# example runs EvaluateInterpolator with EvalOptions::telemetry on when
# SSIN_TELEMETRY_DIR is set).
SSIN_TELEMETRY_DIR=telemetry "$BUILD"/examples/quickstart >/dev/null

# The serving report must carry the arena gauges (per-call bytes and the
# process-wide peak) — the memory half of the fused-serving story.
python3 - <<'EOF'
import json, sys

with open("telemetry/telemetry_serve.json") as f:
    gauges = json.load(f).get("gauges", {})
for name in ("serve.workspace_arena_bytes", "serve.arena_peak_bytes"):
    if gauges.get(name, 0) <= 0:
        sys.exit("telemetry_serve.json lacks a positive %s gauge" % name)
print("serve arena gauges: per-call %d bytes, peak %d bytes"
      % (gauges["serve.workspace_arena_bytes"],
         gauges["serve.arena_peak_bytes"]))
EOF

echo "Wrote telemetry/telemetry_train.json and telemetry/telemetry_serve.json"
