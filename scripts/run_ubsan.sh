#!/usr/bin/env bash
# Builds the kernel-heavy tests under UndefinedBehaviorSanitizer (alone,
# without ASan — see SSIN_UB_SANITIZER) and runs them: the SIMD kernels'
# pointer arithmetic, tail handling, and f32 narrowing conversions must be
# free of UB at every sweep shape, including the empty and single-row
# operands.
#
#   scripts/run_ubsan.sh [build-dir]
#
# Uses a dedicated build tree (default build-ubsan/) so the instrumented
# objects never mix with the regular build/ tree.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ubsan}"

cmake -B "${BUILD_DIR}" -S . -DSSIN_UB_SANITIZER=ON
cmake --build "${BUILD_DIR}" -j --target kernel_differential_test \
  ops_test attention_test inference_equivalence_test geo_test \
  knn_shielding_test

echo "== kernel_differential_test (UBSan) =="
"${BUILD_DIR}/tests/kernel_differential_test"

echo "== ops_test (UBSan) =="
"${BUILD_DIR}/tests/ops_test"

echo "== attention_test (UBSan) =="
"${BUILD_DIR}/tests/attention_test"

echo "== inference_equivalence_test (UBSan) =="
"${BUILD_DIR}/tests/inference_equivalence_test"

echo "== geo_test (UBSan) =="
# Grid-cell index arithmetic (negative offsets, clamped casts) and the
# int64 dense-shape math must be UB-free, including the overflow guards.
"${BUILD_DIR}/tests/geo_test"

echo "== knn_shielding_test (UBSan) =="
"${BUILD_DIR}/tests/knn_shielding_test"

echo "UBSan run clean."
