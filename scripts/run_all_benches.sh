#!/usr/bin/env bash
# Regenerates every paper table/figure into bench_output.txt, mirroring
# the recorded run: Table 4 (the headline comparison) at full bench scale,
# everything else at 0.75. Raise the scales to push toward paper scale.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
MAIN_SCALE=${MAIN_SCALE:-1}
SWEEP_SCALE=${SWEEP_SCALE:-0.75}

{
  SSIN_BENCH_SCALE=$MAIN_SCALE  "$BUILD"/bench/bench_table4_overall
  SSIN_BENCH_SCALE=$SWEEP_SCALE "$BUILD"/bench/bench_table5_model_cost
  "$BUILD"/bench/bench_fig7_attention_kernel
  SSIN_BENCH_SCALE=$SWEEP_SCALE "$BUILD"/bench/bench_table6_ablation
  SSIN_BENCH_SCALE=$SWEEP_SCALE "$BUILD"/bench/bench_fig8_depth
  SSIN_BENCH_SCALE=$SWEEP_SCALE "$BUILD"/bench/bench_fig9_heads
  SSIN_BENCH_SCALE=$SWEEP_SCALE "$BUILD"/bench/bench_fig10_mask_ratio
  SSIN_BENCH_SCALE=$SWEEP_SCALE "$BUILD"/bench/bench_table7_data_amount
  SSIN_BENCH_SCALE=$SWEEP_SCALE "$BUILD"/bench/bench_fig11_model_update
  SSIN_BENCH_SCALE=$SWEEP_SCALE "$BUILD"/bench/bench_table8_transfer
  SSIN_BENCH_SCALE=$SWEEP_SCALE "$BUILD"/bench/bench_table9_traffic
  SSIN_BENCH_SCALE=$SWEEP_SCALE "$BUILD"/bench/bench_ext_outage_robustness
  SSIN_BENCH_SCALE=$SWEEP_SCALE "$BUILD"/bench/bench_ext_hparam_search
} 2>&1 | tee bench_output.txt
