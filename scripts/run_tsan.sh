#!/usr/bin/env bash
# Builds the threading-sensitive tests under ThreadSanitizer and runs them.
#
#   scripts/run_tsan.sh [build-dir]
#
# Uses a dedicated build tree (default build-tsan/) so the instrumented
# objects never mix with the regular build/ tree.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "${BUILD_DIR}" -S . -DSSIN_THREAD_SANITIZER=ON
cmake --build "${BUILD_DIR}" -j --target thread_pool_test \
  parallel_equivalence_test packed_srpe_equivalence_test \
  inference_equivalence_test telemetry_test kernel_differential_test \
  serve_test knn_shielding_test

echo "== thread_pool_test (TSan) =="
"${BUILD_DIR}/tests/thread_pool_test"

echo "== telemetry_test (TSan) =="
"${BUILD_DIR}/tests/telemetry_test"

echo "== parallel_equivalence_test (TSan) =="
"${BUILD_DIR}/tests/parallel_equivalence_test"

echo "== packed_srpe_equivalence_test (TSan) =="
"${BUILD_DIR}/tests/packed_srpe_equivalence_test"

echo "== kernel_differential_test (TSan) =="
# Exercises the threaded MatMulInto dispatch (1 vs 4 threads) over the
# SIMD kernels.
"${BUILD_DIR}/tests/kernel_differential_test"

echo "== inference_equivalence_test (TSan) =="
# Death tests fork, which TSan dislikes; run the concurrency-relevant ones.
"${BUILD_DIR}/tests/inference_equivalence_test" \
  --gtest_filter=-InferenceValidationDeath.*

echo "== knn_shielding_test (TSan) =="
# SetNeighborK flips plan construction while the layout cache may be read
# from serving threads; the parallel trainer builds per-item limited plans
# concurrently. Death tests fork, which TSan dislikes; skip them.
"${BUILD_DIR}/tests/knn_shielding_test" \
  --gtest_filter=-SpatialContextDeathTest.*

echo "== serve_test (TSan) =="
# The serving core's whole point is concurrency: admission vs batcher vs
# hot-swap promotions must be race-free. TSan is the gate for the queue,
# the registry swap protocol, and the atomic serving-precision toggle.
"${BUILD_DIR}/tests/serve_test"

echo "TSan run clean."
