#!/usr/bin/env bash
# Enforces the telemetry overhead budget: runs a fixed small training +
# serving workload with the telemetry runtime off and on (interleaved
# repetitions, best-of comparison) and fails if enabling telemetry costs
# more than 5% wall clock. The serving leg goes through the
# InterpolationServer submit path, so the "on" runs pay for request
# tracing (trace ids, queue-wait spans, flow export) and the windowed
# serving metrics — the gate covers the production serving path, not just
# training. The design target is <2% (src/common/telemetry.h); the 5%
# gate absorbs machine noise.
#
#   scripts/check_overhead.sh [build-dir] [max-overhead-pct]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
MAX_PCT="${2:-5}"

cmake --build "$BUILD" -j --target bench_telemetry_overhead

"$BUILD"/bench/bench_telemetry_overhead --max-overhead-pct="$MAX_PCT"

echo "Telemetry overhead within the ${MAX_PCT}% budget."
