/// Traffic spatial interpolation (paper §4.3): infer speeds at road
/// locations without sensors, using *travel* distance on the freeway graph
/// instead of geographic distance for the relative position embedding.

#include <cstdio>

#include "baselines/idw.h"
#include "baselines/kriging.h"
#include "baselines/tin.h"
#include "core/ssin_interpolator.h"
#include "data/traffic_generator.h"
#include "eval/runner.h"

int main() {
  using namespace ssin;

  // A synthetic freeway network (PEMS-BAY stand-in): corridors crossing at
  // sparse interchanges, so travel distance >> geographic distance for
  // many sensor pairs.
  TrafficNetworkConfig network;
  network.corridors_ew = 4;
  network.corridors_ns = 4;
  network.extent_km = 35.0;
  network.num_sensors = 120;
  TrafficGenerator generator(network);
  SpatialDataset data = generator.Generate(/*num_timestamps=*/300,
                                           /*seed=*/8);
  std::printf("network: %d graph nodes, %d sensors, %d timestamps\n",
              generator.graph().num_nodes(), data.num_stations(),
              data.num_timestamps());

  Rng rng(9);
  NodeSplit split = RandomNodeSplit(data.num_stations(), 0.2, &rng);

  // SpaFormer's relative positions automatically use the dataset's travel
  // distance matrix (SpatialContext::Build); so do IDW/KCN/IGNNK. The
  // coordinate-only methods (TIN, OK) cannot, which is why they fall
  // behind on traffic — the paper's Table 9 story.
  TrainConfig training;
  training.epochs = 5;
  training.masks_per_sequence = 2;
  training.batch_size = 32;
  training.warmup_steps = 120;
  training.lr_factor = 0.3;
  SsinInterpolator ssin(SpaFormerConfig::Paper(), training);
  IdwInterpolator idw;
  TinInterpolator tin;
  KrigingInterpolator ok;

  EvalOptions options;
  options.stride = 2;  // Score every other timestamp.

  std::vector<std::vector<EvalResult>> rows;
  for (SpatialInterpolator* method :
       std::initializer_list<SpatialInterpolator*>{&ssin, &idw, &tin,
                                                   &ok}) {
    std::printf("evaluating %s...\n", method->Name().c_str());
    rows.push_back({EvaluateInterpolator(method, data, split, options)});
  }
  PrintResultsTable("Traffic interpolation (synthetic PEMS-BAY stand-in)",
                    {"speed"}, rows);

  std::printf(
      "\nTravel-distance methods (SpaFormer, IDW) should beat the\n"
      "coordinate-only methods (TIN, OK), mirroring the paper's Table 9.\n");
  return 0;
}
