/// Cross-region transfer (paper §4.2.6 / Table 8): a SpaFormer trained on
/// one region is applied, without fine-tuning, to a different region with
/// different geography and rainfall climate.

#include <cstdio>

#include "core/ssin_interpolator.h"
#include "data/rainfall_generator.h"
#include "eval/runner.h"

int main() {
  using namespace ssin;

  // Two regions with deliberately different scales and rain regimes.
  RainfallRegionConfig hk_region = HkRegionConfig();
  hk_region.num_gauges = 60;
  RainfallRegionConfig bw_region = BwRegionConfig();
  bw_region.num_gauges = 64;

  RainfallGenerator hk_gen(hk_region);
  RainfallGenerator bw_gen(bw_region);
  SpatialDataset hk = hk_gen.GenerateHours(160, 1);
  SpatialDataset bw = bw_gen.GenerateHours(160, 2);

  Rng rng(3);
  NodeSplit hk_split = RandomNodeSplit(hk.num_stations(), 0.2, &rng);
  NodeSplit bw_split = RandomNodeSplit(bw.num_stations(), 0.2, &rng);

  SpaFormerConfig model;  // Paper architecture.
  TrainConfig training;
  training.epochs = 8;
  training.masks_per_sequence = 2;
  training.batch_size = 32;
  training.warmup_steps = 120;
  training.lr_factor = 0.3;

  // Native: trained and evaluated on BW.
  std::printf("training native BW model...\n");
  SsinInterpolator native(model, training);
  const EvalResult native_result =
      EvaluateInterpolator(&native, bw, bw_split);

  // Transfer: trained on HK, evaluated on BW with no fine-tuning. The
  // instance-wise value standardization and the global position
  // standardization are what make the model portable across regions of
  // different rainfall intensity and spatial extent.
  std::printf("training HK source model...\n");
  SsinInterpolator source(model, training);
  source.Fit(hk, hk_split.train_ids);

  SsinInterpolator transferred(model, training);
  transferred.Prepare(bw, bw_split.train_ids);  // BW geometry, no training.
  transferred.CopyParametersFrom(source);
  const EvalResult transfer_result =
      EvaluateWithoutFit(&transferred, bw, bw_split);

  std::printf("\n%-22s %8s %8s %8s\n", "BW test gauges", "RMSE", "MAE",
              "NSE");
  std::printf("%-22s %8.4f %8.4f %8.4f\n", "SpaFormer (native)",
              native_result.metrics.rmse, native_result.metrics.mae,
              native_result.metrics.nse);
  std::printf("%-22s %8.4f %8.4f %8.4f\n", "SpaFormer (HK transfer)",
              transfer_result.metrics.rmse, transfer_result.metrics.mae,
              transfer_result.metrics.nse);
  std::printf(
      "\nExpected shape (paper Table 8): transfer slightly worse than the\n"
      "native model but still competitive.\n");
  return 0;
}
