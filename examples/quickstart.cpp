/// Quickstart: train SSIN on synthetic hourly raingauge data and
/// interpolate rainfall at held-out gauges.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "core/ssin_interpolator.h"
#include "data/rainfall_generator.h"
#include "eval/runner.h"

int main() {
  using namespace ssin;

  // 1. Data: a compact synthetic raingauge region (stand-in for the HK
  //    archive; see DESIGN.md for the substitution rationale).
  RainfallRegionConfig region = HkRegionConfig();
  region.num_gauges = 60;
  RainfallGenerator generator(region);
  SpatialDataset data = generator.GenerateHours(/*num_hours=*/150,
                                                /*seed=*/42);

  // 2. Hold out 20% of the gauges as interpolation targets.
  Rng rng(7);
  NodeSplit split = RandomNodeSplit(data.num_stations(), 0.2, &rng);
  std::printf("stations: %d train / %d test, %d rainy hours\n",
              static_cast<int>(split.train_ids.size()),
              static_cast<int>(split.test_ids.size()),
              data.num_timestamps());

  // 3. Model + self-supervised training (scaled-down hyperparameters; the
  //    paper's full settings are SpaFormerConfig::Paper() with 100 epochs).
  SpaFormerConfig model;        // T=3, H=2, d_e=d_k=16, d_ff=256.
  TrainConfig training;
  training.epochs = 8;
  training.masks_per_sequence = 2;
  training.batch_size = 32;
  training.warmup_steps = 120;
  training.lr_factor = 0.3;
  training.verbose = true;

  SsinInterpolator ssin(model, training);

  // 4. Train, then interpolate every test gauge at every hour and score.
  //    Setting SSIN_TELEMETRY_DIR (e.g. to "telemetry", the gitignored
  //    default) additionally writes telemetry_train.json and
  //    telemetry_serve.json there — versioned metric reports that load in
  //    chrome://tracing / Perfetto (see the README "Profiling a run"
  //    section and docs/operations.md).
  EvalOptions options;
  if (const char* dir = std::getenv("SSIN_TELEMETRY_DIR")) {
    options.telemetry = true;
    options.telemetry_dir = dir;
  }
  std::printf("training SpaFormer...\n");
  const EvalResult result = EvaluateInterpolator(&ssin, data, split, options);
  std::printf("model has %lld parameters\n",
              static_cast<long long>(ssin.model()->ParameterCount()));
  std::printf("\nSpaFormer on held-out gauges:  RMSE %.4f  MAE %.4f  "
              "NSE %.4f\n",
              result.metrics.rmse, result.metrics.mae, result.metrics.nse);

  // 5. Spot-check one hour.
  const int hour = 0;
  std::vector<double> predictions = ssin.InterpolateTimestamp(
      data.Values(hour), split.train_ids, split.test_ids);
  std::printf("\nhour %d sample:\n  %-10s %8s %8s\n", hour, "gauge",
              "truth", "pred");
  for (size_t q = 0; q < split.test_ids.size() && q < 5; ++q) {
    const Station& s = data.station(split.test_ids[q]);
    std::printf("  %-10s %8.2f %8.2f\n", s.id.c_str(),
                data.Value(hour, split.test_ids[q]), predictions[q]);
  }
  return 0;
}
