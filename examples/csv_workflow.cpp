/// Real-data workflow: load a raingauge archive from CSV, train SSIN,
/// checkpoint the model, reload it, and serve interpolation queries.
///
/// The CSV layout matches common climate-database exports
/// (see src/data/csv_loader.h). This example first writes a synthetic
/// archive in that layout so it is self-contained.

#include <cstdio>

#include "core/ssin_interpolator.h"
#include "data/csv_loader.h"
#include "data/rainfall_generator.h"
#include "nn/serialize.h"

int main() {
  using namespace ssin;

  // --- 0. Produce a CSV archive (stand-in for a real export). ---
  {
    RainfallRegionConfig region = HkRegionConfig();
    region.num_gauges = 50;
    RainfallGenerator generator(region);
    SpatialDataset synthetic = generator.GenerateHours(120, 99);
    if (!SaveDatasetCsv(synthetic, "stations.csv", "values.csv")) {
      std::fprintf(stderr, "failed to write CSV archive\n");
      return 1;
    }
    std::printf("wrote stations.csv + values.csv (%d gauges, %d hours)\n",
                synthetic.num_stations(), synthetic.num_timestamps());
  }

  // --- 1. Load the archive as a user would. ---
  SpatialDataset data;
  std::string error;
  if (!LoadDatasetCsv("stations.csv", "values.csv", &data, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("loaded %d gauges x %d hours\n", data.num_stations(),
              data.num_timestamps());

  Rng rng(4);
  NodeSplit split = RandomNodeSplit(data.num_stations(), 0.2, &rng);

  // --- 2. Train and checkpoint. ---
  TrainConfig training;
  training.epochs = 6;
  training.masks_per_sequence = 2;
  training.batch_size = 32;
  training.warmup_steps = 40;
  training.lr_factor = 0.25;
  SsinInterpolator trained(SpaFormerConfig::Paper(), training);
  std::printf("training...\n");
  trained.Fit(data, split.train_ids);
  if (!SaveModule(trained.model(), "spaformer.ckpt")) {
    std::fprintf(stderr, "checkpoint save failed\n");
    return 1;
  }
  std::printf("saved spaformer.ckpt\n");

  // --- 3. A fresh process would reload and serve. ---
  SsinInterpolator serving(SpaFormerConfig::Paper(), training);
  serving.Prepare(data, split.train_ids);  // Geometry only, no training.
  if (!LoadModule(serving.model(), "spaformer.ckpt")) {
    std::fprintf(stderr, "checkpoint load failed\n");
    return 1;
  }

  const std::vector<double> predictions = serving.InterpolateTimestamp(
      data.Values(0), split.train_ids, split.test_ids);
  std::printf("\nhour 0 predictions from the reloaded model:\n");
  for (size_t q = 0; q < split.test_ids.size() && q < 6; ++q) {
    std::printf("  %-8s truth %6.2f mm  predicted %6.2f mm\n",
                data.station(split.test_ids[q]).id.c_str(),
                data.Value(0, split.test_ids[q]), predictions[q]);
  }
  std::remove("stations.csv");
  std::remove("values.csv");
  std::remove("spaformer.ckpt");
  return 0;
}
