/// Rainfall mapping: the paper's motivating use case — infer a
/// fine-grained rainfall field for a whole region from sparse gauges.
///
/// Trains SSIN on a synthetic HK-like gauge network, then interpolates one
/// storm hour onto a dense grid, prints an ASCII rain map next to the IDW
/// map and the simulated ground truth, and writes rainfall_map.csv.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/idw.h"
#include "common/csv.h"
#include "core/ssin_interpolator.h"
#include "data/rainfall_generator.h"
#include "eval/metrics.h"

namespace {

using namespace ssin;

constexpr int kGridW = 26;
constexpr int kGridH = 18;

char Glyph(double mm) {
  static const char* kRamp = " .:-=+*#%@";
  int level = static_cast<int>(mm / 1.5);
  if (level < 0) level = 0;
  if (level > 9) level = 9;
  return kRamp[level];
}

void PrintMap(const char* title, const std::vector<double>& field) {
  std::printf("%s\n", title);
  for (int gy = kGridH - 1; gy >= 0; --gy) {
    std::printf("  ");
    for (int gx = 0; gx < kGridW; ++gx) {
      std::putchar(Glyph(field[gy * kGridW + gx]));
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  RainfallRegionConfig region = HkRegionConfig();
  region.num_gauges = 80;
  RainfallGenerator generator(region);

  // Grid of query points covering the domain. The generator also produces
  // ground-truth rainfall at these points (same latent field).
  std::vector<PointKm> grid;
  for (int gy = 0; gy < kGridH; ++gy) {
    for (int gx = 0; gx < kGridW; ++gx) {
      grid.push_back({(gx + 0.5) / kGridW * region.width_km,
                      (gy + 0.5) / kGridH * region.height_km});
    }
  }

  const int kHours = 150;
  SpatialDataset data = generator.GenerateHoursAt(grid, kHours, 2024);
  const int num_gauges = region.num_gauges;
  std::vector<int> gauge_ids, grid_ids;
  for (int i = 0; i < num_gauges; ++i) gauge_ids.push_back(i);
  for (size_t i = 0; i < grid.size(); ++i) {
    grid_ids.push_back(num_gauges + static_cast<int>(i));
  }

  // Train SSIN on gauges only (the grid is never seen in training).
  TrainConfig training;
  training.epochs = 8;
  training.masks_per_sequence = 2;
  training.batch_size = 32;
  training.warmup_steps = 120;
  training.lr_factor = 0.3;
  SsinInterpolator ssin(SpaFormerConfig::Paper(), training);
  std::printf("training SpaFormer on %d gauges x %d hours...\n", num_gauges,
              kHours);
  ssin.Fit(data, gauge_ids);

  // Pick the wettest hour for a dramatic map.
  int storm_hour = 0;
  double best = -1.0;
  for (int t = 0; t < data.num_timestamps(); ++t) {
    double total = 0.0;
    for (int i = 0; i < num_gauges; ++i) total += data.Value(t, i);
    if (total > best) {
      best = total;
      storm_hour = t;
    }
  }
  std::printf("storm hour: t=%d (gauge total %.1f mm)\n\n", storm_hour,
              best);

  // Interpolate the full grid in one shielded forward pass.
  const std::vector<double> ssin_field = ssin.InterpolateTimestamp(
      data.Values(storm_hour), gauge_ids, grid_ids);

  IdwInterpolator idw;
  idw.Fit(data, gauge_ids);
  const std::vector<double> idw_field = idw.InterpolateTimestamp(
      data.Values(storm_hour), gauge_ids, grid_ids);

  std::vector<double> truth_field(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    truth_field[i] = data.Value(storm_hour, grid_ids[i]);
  }

  PrintMap("simulated ground truth (mm/h):", truth_field);
  PrintMap("\nSpaFormer interpolation:", ssin_field);
  PrintMap("\nIDW interpolation:", idw_field);

  const Metrics ssin_m = ComputeMetrics(truth_field, ssin_field);
  const Metrics idw_m = ComputeMetrics(truth_field, idw_field);
  std::printf("\ngrid errors vs simulated truth (storm hour):\n");
  std::printf("  SpaFormer: RMSE %.3f  MAE %.3f\n", ssin_m.rmse, ssin_m.mae);
  std::printf("  IDW:       RMSE %.3f  MAE %.3f\n", idw_m.rmse, idw_m.mae);

  // CSV export for GIS tooling.
  CsvTable csv;
  csv.header = {"x_km", "y_km", "truth_mm", "spaformer_mm", "idw_mm"};
  for (size_t i = 0; i < grid.size(); ++i) {
    csv.rows.push_back({std::to_string(grid[i].x), std::to_string(grid[i].y),
                        std::to_string(truth_field[i]),
                        std::to_string(ssin_field[i]),
                        std::to_string(idw_field[i])});
  }
  if (WriteCsv("rainfall_map.csv", csv)) {
    std::printf("\nwrote rainfall_map.csv (%zu grid cells)\n", grid.size());
  }
  return 0;
}
