# Empty dependencies file for rainfall_mapping.
# This may be replaced when dependencies are built.
