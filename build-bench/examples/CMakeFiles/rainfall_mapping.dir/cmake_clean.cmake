file(REMOVE_RECURSE
  "CMakeFiles/rainfall_mapping.dir/rainfall_mapping.cpp.o"
  "CMakeFiles/rainfall_mapping.dir/rainfall_mapping.cpp.o.d"
  "rainfall_mapping"
  "rainfall_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainfall_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
