# Empty compiler generated dependencies file for traffic_interpolation.
# This may be replaced when dependencies are built.
