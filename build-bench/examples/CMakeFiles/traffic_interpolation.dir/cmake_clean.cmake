file(REMOVE_RECURSE
  "CMakeFiles/traffic_interpolation.dir/traffic_interpolation.cpp.o"
  "CMakeFiles/traffic_interpolation.dir/traffic_interpolation.cpp.o.d"
  "traffic_interpolation"
  "traffic_interpolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
