# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-bench/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_telemetry_overhead_smoke "/root/repo/build-bench/bench/bench_telemetry_overhead" "--smoke")
set_tests_properties(bench_telemetry_overhead_smoke PROPERTIES  LABELS "tier1" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig7_fused_smoke "/root/repo/build-bench/bench/bench_fig7_attention_kernel" "--smoke")
set_tests_properties(bench_fig7_fused_smoke PROPERTIES  LABELS "tier1" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
