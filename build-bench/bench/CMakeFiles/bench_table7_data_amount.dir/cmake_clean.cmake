file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_data_amount.dir/bench_table7_data_amount.cc.o"
  "CMakeFiles/bench_table7_data_amount.dir/bench_table7_data_amount.cc.o.d"
  "bench_table7_data_amount"
  "bench_table7_data_amount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_data_amount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
