# Empty dependencies file for bench_table7_data_amount.
# This may be replaced when dependencies are built.
