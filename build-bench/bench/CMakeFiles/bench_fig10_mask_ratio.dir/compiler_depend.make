# Empty compiler generated dependencies file for bench_fig10_mask_ratio.
# This may be replaced when dependencies are built.
