file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hparam_search.dir/bench_ext_hparam_search.cc.o"
  "CMakeFiles/bench_ext_hparam_search.dir/bench_ext_hparam_search.cc.o.d"
  "bench_ext_hparam_search"
  "bench_ext_hparam_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hparam_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
