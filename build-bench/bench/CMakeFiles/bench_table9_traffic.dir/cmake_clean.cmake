file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_traffic.dir/bench_table9_traffic.cc.o"
  "CMakeFiles/bench_table9_traffic.dir/bench_table9_traffic.cc.o.d"
  "bench_table9_traffic"
  "bench_table9_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
