# Empty dependencies file for bench_fig7_attention_kernel.
# This may be replaced when dependencies are built.
