file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_model_update.dir/bench_fig11_model_update.cc.o"
  "CMakeFiles/bench_fig11_model_update.dir/bench_fig11_model_update.cc.o.d"
  "bench_fig11_model_update"
  "bench_fig11_model_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_model_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
