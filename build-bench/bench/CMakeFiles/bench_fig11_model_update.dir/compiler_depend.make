# Empty compiler generated dependencies file for bench_fig11_model_update.
# This may be replaced when dependencies are built.
