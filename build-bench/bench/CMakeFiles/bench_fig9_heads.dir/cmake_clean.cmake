file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_heads.dir/bench_fig9_heads.cc.o"
  "CMakeFiles/bench_fig9_heads.dir/bench_fig9_heads.cc.o.d"
  "bench_fig9_heads"
  "bench_fig9_heads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_heads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
