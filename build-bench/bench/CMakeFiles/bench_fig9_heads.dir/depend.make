# Empty dependencies file for bench_fig9_heads.
# This may be replaced when dependencies are built.
