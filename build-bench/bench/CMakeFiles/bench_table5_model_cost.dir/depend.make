# Empty dependencies file for bench_table5_model_cost.
# This may be replaced when dependencies are built.
