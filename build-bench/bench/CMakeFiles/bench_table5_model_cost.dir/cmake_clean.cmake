file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_model_cost.dir/bench_table5_model_cost.cc.o"
  "CMakeFiles/bench_table5_model_cost.dir/bench_table5_model_cost.cc.o.d"
  "bench_table5_model_cost"
  "bench_table5_model_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_model_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
