# Empty compiler generated dependencies file for bench_fig8_depth.
# This may be replaced when dependencies are built.
