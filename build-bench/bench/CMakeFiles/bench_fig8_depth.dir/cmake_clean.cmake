file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_depth.dir/bench_fig8_depth.cc.o"
  "CMakeFiles/bench_fig8_depth.dir/bench_fig8_depth.cc.o.d"
  "bench_fig8_depth"
  "bench_fig8_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
