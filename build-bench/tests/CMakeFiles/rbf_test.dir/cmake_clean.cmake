file(REMOVE_RECURSE
  "CMakeFiles/rbf_test.dir/rbf_test.cc.o"
  "CMakeFiles/rbf_test.dir/rbf_test.cc.o.d"
  "rbf_test"
  "rbf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
