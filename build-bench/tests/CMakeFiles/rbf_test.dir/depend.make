# Empty dependencies file for rbf_test.
# This may be replaced when dependencies are built.
