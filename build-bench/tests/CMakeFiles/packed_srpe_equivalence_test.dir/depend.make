# Empty dependencies file for packed_srpe_equivalence_test.
# This may be replaced when dependencies are built.
