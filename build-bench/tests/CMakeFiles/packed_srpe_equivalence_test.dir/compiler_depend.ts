# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for packed_srpe_equivalence_test.
