file(REMOVE_RECURSE
  "CMakeFiles/packed_srpe_equivalence_test.dir/packed_srpe_equivalence_test.cc.o"
  "CMakeFiles/packed_srpe_equivalence_test.dir/packed_srpe_equivalence_test.cc.o.d"
  "packed_srpe_equivalence_test"
  "packed_srpe_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packed_srpe_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
