file(REMOVE_RECURSE
  "CMakeFiles/parallel_equivalence_test.dir/parallel_equivalence_test.cc.o"
  "CMakeFiles/parallel_equivalence_test.dir/parallel_equivalence_test.cc.o.d"
  "parallel_equivalence_test"
  "parallel_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
