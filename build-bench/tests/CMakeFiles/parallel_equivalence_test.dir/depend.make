# Empty dependencies file for parallel_equivalence_test.
# This may be replaced when dependencies are built.
