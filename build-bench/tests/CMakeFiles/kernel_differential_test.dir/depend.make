# Empty dependencies file for kernel_differential_test.
# This may be replaced when dependencies are built.
