file(REMOVE_RECURSE
  "CMakeFiles/kernel_differential_test.dir/kernel_differential_test.cc.o"
  "CMakeFiles/kernel_differential_test.dir/kernel_differential_test.cc.o.d"
  "kernel_differential_test"
  "kernel_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
