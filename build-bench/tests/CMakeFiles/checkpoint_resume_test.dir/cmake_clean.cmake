file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_resume_test.dir/checkpoint_resume_test.cc.o"
  "CMakeFiles/checkpoint_resume_test.dir/checkpoint_resume_test.cc.o.d"
  "checkpoint_resume_test"
  "checkpoint_resume_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_resume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
