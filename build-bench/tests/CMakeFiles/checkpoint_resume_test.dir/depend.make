# Empty dependencies file for checkpoint_resume_test.
# This may be replaced when dependencies are built.
