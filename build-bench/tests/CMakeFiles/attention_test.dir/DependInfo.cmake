
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/attention_test.cc" "tests/CMakeFiles/attention_test.dir/attention_test.cc.o" "gcc" "tests/CMakeFiles/attention_test.dir/attention_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-bench/src/eval/CMakeFiles/ssin_eval.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/baselines/CMakeFiles/ssin_baselines.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/core/CMakeFiles/ssin_core.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/data/CMakeFiles/ssin_data.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/nn/CMakeFiles/ssin_nn.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/geo/CMakeFiles/ssin_geo.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/tensor/CMakeFiles/ssin_tensor.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/common/CMakeFiles/ssin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
