file(REMOVE_RECURSE
  "CMakeFiles/masking_test.dir/masking_test.cc.o"
  "CMakeFiles/masking_test.dir/masking_test.cc.o.d"
  "masking_test"
  "masking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
