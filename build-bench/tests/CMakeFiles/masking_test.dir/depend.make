# Empty dependencies file for masking_test.
# This may be replaced when dependencies are built.
