file(REMOVE_RECURSE
  "CMakeFiles/eval_tools_test.dir/eval_tools_test.cc.o"
  "CMakeFiles/eval_tools_test.dir/eval_tools_test.cc.o.d"
  "eval_tools_test"
  "eval_tools_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_tools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
