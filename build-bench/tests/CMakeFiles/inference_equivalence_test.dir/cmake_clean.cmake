file(REMOVE_RECURSE
  "CMakeFiles/inference_equivalence_test.dir/inference_equivalence_test.cc.o"
  "CMakeFiles/inference_equivalence_test.dir/inference_equivalence_test.cc.o.d"
  "inference_equivalence_test"
  "inference_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
