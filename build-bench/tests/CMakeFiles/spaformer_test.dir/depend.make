# Empty dependencies file for spaformer_test.
# This may be replaced when dependencies are built.
