file(REMOVE_RECURSE
  "CMakeFiles/spaformer_test.dir/spaformer_test.cc.o"
  "CMakeFiles/spaformer_test.dir/spaformer_test.cc.o.d"
  "spaformer_test"
  "spaformer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spaformer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
