file(REMOVE_RECURSE
  "libssin_baselines.a"
)
