file(REMOVE_RECURSE
  "CMakeFiles/ssin_baselines.dir/delaunay.cc.o"
  "CMakeFiles/ssin_baselines.dir/delaunay.cc.o.d"
  "CMakeFiles/ssin_baselines.dir/idw.cc.o"
  "CMakeFiles/ssin_baselines.dir/idw.cc.o.d"
  "CMakeFiles/ssin_baselines.dir/ignnk.cc.o"
  "CMakeFiles/ssin_baselines.dir/ignnk.cc.o.d"
  "CMakeFiles/ssin_baselines.dir/kcn.cc.o"
  "CMakeFiles/ssin_baselines.dir/kcn.cc.o.d"
  "CMakeFiles/ssin_baselines.dir/kriging.cc.o"
  "CMakeFiles/ssin_baselines.dir/kriging.cc.o.d"
  "CMakeFiles/ssin_baselines.dir/rbf.cc.o"
  "CMakeFiles/ssin_baselines.dir/rbf.cc.o.d"
  "CMakeFiles/ssin_baselines.dir/tin.cc.o"
  "CMakeFiles/ssin_baselines.dir/tin.cc.o.d"
  "CMakeFiles/ssin_baselines.dir/tps.cc.o"
  "CMakeFiles/ssin_baselines.dir/tps.cc.o.d"
  "CMakeFiles/ssin_baselines.dir/variogram.cc.o"
  "CMakeFiles/ssin_baselines.dir/variogram.cc.o.d"
  "libssin_baselines.a"
  "libssin_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssin_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
