
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/delaunay.cc" "src/baselines/CMakeFiles/ssin_baselines.dir/delaunay.cc.o" "gcc" "src/baselines/CMakeFiles/ssin_baselines.dir/delaunay.cc.o.d"
  "/root/repo/src/baselines/idw.cc" "src/baselines/CMakeFiles/ssin_baselines.dir/idw.cc.o" "gcc" "src/baselines/CMakeFiles/ssin_baselines.dir/idw.cc.o.d"
  "/root/repo/src/baselines/ignnk.cc" "src/baselines/CMakeFiles/ssin_baselines.dir/ignnk.cc.o" "gcc" "src/baselines/CMakeFiles/ssin_baselines.dir/ignnk.cc.o.d"
  "/root/repo/src/baselines/kcn.cc" "src/baselines/CMakeFiles/ssin_baselines.dir/kcn.cc.o" "gcc" "src/baselines/CMakeFiles/ssin_baselines.dir/kcn.cc.o.d"
  "/root/repo/src/baselines/kriging.cc" "src/baselines/CMakeFiles/ssin_baselines.dir/kriging.cc.o" "gcc" "src/baselines/CMakeFiles/ssin_baselines.dir/kriging.cc.o.d"
  "/root/repo/src/baselines/rbf.cc" "src/baselines/CMakeFiles/ssin_baselines.dir/rbf.cc.o" "gcc" "src/baselines/CMakeFiles/ssin_baselines.dir/rbf.cc.o.d"
  "/root/repo/src/baselines/tin.cc" "src/baselines/CMakeFiles/ssin_baselines.dir/tin.cc.o" "gcc" "src/baselines/CMakeFiles/ssin_baselines.dir/tin.cc.o.d"
  "/root/repo/src/baselines/tps.cc" "src/baselines/CMakeFiles/ssin_baselines.dir/tps.cc.o" "gcc" "src/baselines/CMakeFiles/ssin_baselines.dir/tps.cc.o.d"
  "/root/repo/src/baselines/variogram.cc" "src/baselines/CMakeFiles/ssin_baselines.dir/variogram.cc.o" "gcc" "src/baselines/CMakeFiles/ssin_baselines.dir/variogram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-bench/src/core/CMakeFiles/ssin_core.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/nn/CMakeFiles/ssin_nn.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/data/CMakeFiles/ssin_data.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/geo/CMakeFiles/ssin_geo.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/tensor/CMakeFiles/ssin_tensor.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/common/CMakeFiles/ssin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
