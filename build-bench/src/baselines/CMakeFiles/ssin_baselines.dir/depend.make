# Empty dependencies file for ssin_baselines.
# This may be replaced when dependencies are built.
