# Empty dependencies file for ssin_data.
# This may be replaced when dependencies are built.
