file(REMOVE_RECURSE
  "libssin_data.a"
)
