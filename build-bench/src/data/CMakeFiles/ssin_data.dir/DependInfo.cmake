
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv_loader.cc" "src/data/CMakeFiles/ssin_data.dir/csv_loader.cc.o" "gcc" "src/data/CMakeFiles/ssin_data.dir/csv_loader.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/ssin_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/ssin_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/rainfall_generator.cc" "src/data/CMakeFiles/ssin_data.dir/rainfall_generator.cc.o" "gcc" "src/data/CMakeFiles/ssin_data.dir/rainfall_generator.cc.o.d"
  "/root/repo/src/data/traffic_generator.cc" "src/data/CMakeFiles/ssin_data.dir/traffic_generator.cc.o" "gcc" "src/data/CMakeFiles/ssin_data.dir/traffic_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-bench/src/common/CMakeFiles/ssin_common.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/geo/CMakeFiles/ssin_geo.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/tensor/CMakeFiles/ssin_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
