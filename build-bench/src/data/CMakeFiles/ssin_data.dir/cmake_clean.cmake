file(REMOVE_RECURSE
  "CMakeFiles/ssin_data.dir/csv_loader.cc.o"
  "CMakeFiles/ssin_data.dir/csv_loader.cc.o.d"
  "CMakeFiles/ssin_data.dir/dataset.cc.o"
  "CMakeFiles/ssin_data.dir/dataset.cc.o.d"
  "CMakeFiles/ssin_data.dir/rainfall_generator.cc.o"
  "CMakeFiles/ssin_data.dir/rainfall_generator.cc.o.d"
  "CMakeFiles/ssin_data.dir/traffic_generator.cc.o"
  "CMakeFiles/ssin_data.dir/traffic_generator.cc.o.d"
  "libssin_data.a"
  "libssin_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssin_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
