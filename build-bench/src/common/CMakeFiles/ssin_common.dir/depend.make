# Empty dependencies file for ssin_common.
# This may be replaced when dependencies are built.
