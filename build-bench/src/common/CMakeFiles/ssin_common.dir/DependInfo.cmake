
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/csv.cc" "src/common/CMakeFiles/ssin_common.dir/csv.cc.o" "gcc" "src/common/CMakeFiles/ssin_common.dir/csv.cc.o.d"
  "/root/repo/src/common/json_writer.cc" "src/common/CMakeFiles/ssin_common.dir/json_writer.cc.o" "gcc" "src/common/CMakeFiles/ssin_common.dir/json_writer.cc.o.d"
  "/root/repo/src/common/log.cc" "src/common/CMakeFiles/ssin_common.dir/log.cc.o" "gcc" "src/common/CMakeFiles/ssin_common.dir/log.cc.o.d"
  "/root/repo/src/common/matrix.cc" "src/common/CMakeFiles/ssin_common.dir/matrix.cc.o" "gcc" "src/common/CMakeFiles/ssin_common.dir/matrix.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/common/CMakeFiles/ssin_common.dir/stats.cc.o" "gcc" "src/common/CMakeFiles/ssin_common.dir/stats.cc.o.d"
  "/root/repo/src/common/telemetry.cc" "src/common/CMakeFiles/ssin_common.dir/telemetry.cc.o" "gcc" "src/common/CMakeFiles/ssin_common.dir/telemetry.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/common/CMakeFiles/ssin_common.dir/thread_pool.cc.o" "gcc" "src/common/CMakeFiles/ssin_common.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
