file(REMOVE_RECURSE
  "libssin_common.a"
)
