file(REMOVE_RECURSE
  "CMakeFiles/ssin_common.dir/csv.cc.o"
  "CMakeFiles/ssin_common.dir/csv.cc.o.d"
  "CMakeFiles/ssin_common.dir/json_writer.cc.o"
  "CMakeFiles/ssin_common.dir/json_writer.cc.o.d"
  "CMakeFiles/ssin_common.dir/log.cc.o"
  "CMakeFiles/ssin_common.dir/log.cc.o.d"
  "CMakeFiles/ssin_common.dir/matrix.cc.o"
  "CMakeFiles/ssin_common.dir/matrix.cc.o.d"
  "CMakeFiles/ssin_common.dir/stats.cc.o"
  "CMakeFiles/ssin_common.dir/stats.cc.o.d"
  "CMakeFiles/ssin_common.dir/telemetry.cc.o"
  "CMakeFiles/ssin_common.dir/telemetry.cc.o.d"
  "CMakeFiles/ssin_common.dir/thread_pool.cc.o"
  "CMakeFiles/ssin_common.dir/thread_pool.cc.o.d"
  "libssin_common.a"
  "libssin_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssin_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
