# Empty dependencies file for ssin_tensor.
# This may be replaced when dependencies are built.
