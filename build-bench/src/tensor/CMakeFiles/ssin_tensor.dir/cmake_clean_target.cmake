file(REMOVE_RECURSE
  "libssin_tensor.a"
)
