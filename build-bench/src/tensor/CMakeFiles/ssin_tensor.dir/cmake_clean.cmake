file(REMOVE_RECURSE
  "CMakeFiles/ssin_tensor.dir/attention_kernels.cc.o"
  "CMakeFiles/ssin_tensor.dir/attention_kernels.cc.o.d"
  "CMakeFiles/ssin_tensor.dir/graph.cc.o"
  "CMakeFiles/ssin_tensor.dir/graph.cc.o.d"
  "CMakeFiles/ssin_tensor.dir/ops.cc.o"
  "CMakeFiles/ssin_tensor.dir/ops.cc.o.d"
  "CMakeFiles/ssin_tensor.dir/tensor.cc.o"
  "CMakeFiles/ssin_tensor.dir/tensor.cc.o.d"
  "libssin_tensor.a"
  "libssin_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssin_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
