file(REMOVE_RECURSE
  "libssin_geo.a"
)
