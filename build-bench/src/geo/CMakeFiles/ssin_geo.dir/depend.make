# Empty dependencies file for ssin_geo.
# This may be replaced when dependencies are built.
