file(REMOVE_RECURSE
  "CMakeFiles/ssin_geo.dir/coords.cc.o"
  "CMakeFiles/ssin_geo.dir/coords.cc.o.d"
  "CMakeFiles/ssin_geo.dir/relpos.cc.o"
  "CMakeFiles/ssin_geo.dir/relpos.cc.o.d"
  "CMakeFiles/ssin_geo.dir/road_graph.cc.o"
  "CMakeFiles/ssin_geo.dir/road_graph.cc.o.d"
  "libssin_geo.a"
  "libssin_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssin_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
