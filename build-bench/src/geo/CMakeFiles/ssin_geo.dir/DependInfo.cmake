
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/coords.cc" "src/geo/CMakeFiles/ssin_geo.dir/coords.cc.o" "gcc" "src/geo/CMakeFiles/ssin_geo.dir/coords.cc.o.d"
  "/root/repo/src/geo/relpos.cc" "src/geo/CMakeFiles/ssin_geo.dir/relpos.cc.o" "gcc" "src/geo/CMakeFiles/ssin_geo.dir/relpos.cc.o.d"
  "/root/repo/src/geo/road_graph.cc" "src/geo/CMakeFiles/ssin_geo.dir/road_graph.cc.o" "gcc" "src/geo/CMakeFiles/ssin_geo.dir/road_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-bench/src/common/CMakeFiles/ssin_common.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/tensor/CMakeFiles/ssin_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
