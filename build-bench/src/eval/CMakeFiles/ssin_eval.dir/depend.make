# Empty dependencies file for ssin_eval.
# This may be replaced when dependencies are built.
