file(REMOVE_RECURSE
  "libssin_eval.a"
)
