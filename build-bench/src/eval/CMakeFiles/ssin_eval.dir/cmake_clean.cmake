file(REMOVE_RECURSE
  "CMakeFiles/ssin_eval.dir/crossval.cc.o"
  "CMakeFiles/ssin_eval.dir/crossval.cc.o.d"
  "CMakeFiles/ssin_eval.dir/metrics.cc.o"
  "CMakeFiles/ssin_eval.dir/metrics.cc.o.d"
  "CMakeFiles/ssin_eval.dir/outage.cc.o"
  "CMakeFiles/ssin_eval.dir/outage.cc.o.d"
  "CMakeFiles/ssin_eval.dir/raster.cc.o"
  "CMakeFiles/ssin_eval.dir/raster.cc.o.d"
  "CMakeFiles/ssin_eval.dir/runner.cc.o"
  "CMakeFiles/ssin_eval.dir/runner.cc.o.d"
  "CMakeFiles/ssin_eval.dir/tuner.cc.o"
  "CMakeFiles/ssin_eval.dir/tuner.cc.o.d"
  "libssin_eval.a"
  "libssin_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssin_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
