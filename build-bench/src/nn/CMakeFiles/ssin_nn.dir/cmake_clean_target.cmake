file(REMOVE_RECURSE
  "libssin_nn.a"
)
