file(REMOVE_RECURSE
  "CMakeFiles/ssin_nn.dir/attention.cc.o"
  "CMakeFiles/ssin_nn.dir/attention.cc.o.d"
  "CMakeFiles/ssin_nn.dir/inference.cc.o"
  "CMakeFiles/ssin_nn.dir/inference.cc.o.d"
  "CMakeFiles/ssin_nn.dir/layers.cc.o"
  "CMakeFiles/ssin_nn.dir/layers.cc.o.d"
  "CMakeFiles/ssin_nn.dir/module.cc.o"
  "CMakeFiles/ssin_nn.dir/module.cc.o.d"
  "CMakeFiles/ssin_nn.dir/optimizer.cc.o"
  "CMakeFiles/ssin_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/ssin_nn.dir/serialize.cc.o"
  "CMakeFiles/ssin_nn.dir/serialize.cc.o.d"
  "CMakeFiles/ssin_nn.dir/transformer.cc.o"
  "CMakeFiles/ssin_nn.dir/transformer.cc.o.d"
  "libssin_nn.a"
  "libssin_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssin_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
