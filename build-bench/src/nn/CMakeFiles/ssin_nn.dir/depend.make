# Empty dependencies file for ssin_nn.
# This may be replaced when dependencies are built.
