
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/ssin_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/ssin_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/inference.cc" "src/nn/CMakeFiles/ssin_nn.dir/inference.cc.o" "gcc" "src/nn/CMakeFiles/ssin_nn.dir/inference.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/ssin_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/ssin_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/ssin_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/ssin_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/ssin_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/ssin_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/ssin_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/ssin_nn.dir/serialize.cc.o.d"
  "/root/repo/src/nn/transformer.cc" "src/nn/CMakeFiles/ssin_nn.dir/transformer.cc.o" "gcc" "src/nn/CMakeFiles/ssin_nn.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-bench/src/tensor/CMakeFiles/ssin_tensor.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/common/CMakeFiles/ssin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
