
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/inference_engine.cc" "src/core/CMakeFiles/ssin_core.dir/inference_engine.cc.o" "gcc" "src/core/CMakeFiles/ssin_core.dir/inference_engine.cc.o.d"
  "/root/repo/src/core/interpolation.cc" "src/core/CMakeFiles/ssin_core.dir/interpolation.cc.o" "gcc" "src/core/CMakeFiles/ssin_core.dir/interpolation.cc.o.d"
  "/root/repo/src/core/masking.cc" "src/core/CMakeFiles/ssin_core.dir/masking.cc.o" "gcc" "src/core/CMakeFiles/ssin_core.dir/masking.cc.o.d"
  "/root/repo/src/core/spaformer.cc" "src/core/CMakeFiles/ssin_core.dir/spaformer.cc.o" "gcc" "src/core/CMakeFiles/ssin_core.dir/spaformer.cc.o.d"
  "/root/repo/src/core/spatial_context.cc" "src/core/CMakeFiles/ssin_core.dir/spatial_context.cc.o" "gcc" "src/core/CMakeFiles/ssin_core.dir/spatial_context.cc.o.d"
  "/root/repo/src/core/ssin_interpolator.cc" "src/core/CMakeFiles/ssin_core.dir/ssin_interpolator.cc.o" "gcc" "src/core/CMakeFiles/ssin_core.dir/ssin_interpolator.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/ssin_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/ssin_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-bench/src/nn/CMakeFiles/ssin_nn.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/geo/CMakeFiles/ssin_geo.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/data/CMakeFiles/ssin_data.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/tensor/CMakeFiles/ssin_tensor.dir/DependInfo.cmake"
  "/root/repo/build-bench/src/common/CMakeFiles/ssin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
