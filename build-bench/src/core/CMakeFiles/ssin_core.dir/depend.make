# Empty dependencies file for ssin_core.
# This may be replaced when dependencies are built.
