file(REMOVE_RECURSE
  "CMakeFiles/ssin_core.dir/inference_engine.cc.o"
  "CMakeFiles/ssin_core.dir/inference_engine.cc.o.d"
  "CMakeFiles/ssin_core.dir/interpolation.cc.o"
  "CMakeFiles/ssin_core.dir/interpolation.cc.o.d"
  "CMakeFiles/ssin_core.dir/masking.cc.o"
  "CMakeFiles/ssin_core.dir/masking.cc.o.d"
  "CMakeFiles/ssin_core.dir/spaformer.cc.o"
  "CMakeFiles/ssin_core.dir/spaformer.cc.o.d"
  "CMakeFiles/ssin_core.dir/spatial_context.cc.o"
  "CMakeFiles/ssin_core.dir/spatial_context.cc.o.d"
  "CMakeFiles/ssin_core.dir/ssin_interpolator.cc.o"
  "CMakeFiles/ssin_core.dir/ssin_interpolator.cc.o.d"
  "CMakeFiles/ssin_core.dir/trainer.cc.o"
  "CMakeFiles/ssin_core.dir/trainer.cc.o.d"
  "libssin_core.a"
  "libssin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
