file(REMOVE_RECURSE
  "libssin_core.a"
)
